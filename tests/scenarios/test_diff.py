"""Scenario diffing: spec/aggregate/policy deltas and the diff CLI."""

from __future__ import annotations

import json

import pytest

from repro.scenarios import (
    ResultsStore,
    ScenarioSpec,
    ScenarioSuite,
    diff_entries,
    format_diff,
    run_suite,
)
from repro.scenarios.__main__ import main as cli_main
from repro.scenarios.spec import tax_reform_suite


@pytest.fixture(scope="module")
def tax_store(tmp_path_factory):
    """Two tax-reform preset entries (differing in tau_capital) in one store."""
    full = tax_reform_suite()
    pair = ScenarioSuite("tax-pair", [full[0], full[1]])
    store = ResultsStore(tmp_path_factory.mktemp("store"))
    report = run_suite(pair, store)
    assert report.ok
    return store, pair


class TestDiffEntries:
    def test_calibration_and_aggregate_deltas(self, tax_store):
        store, pair = tax_store
        diff = diff_entries(store, pair[0].content_hash(), pair[1].content_hash())
        # the two tax-reform entries differ exactly in the capital tax
        assert set(diff["calibration"]["changed"]) == {"tau_capital"}
        assert diff["calibration"]["changed"]["tau_capital"] == {"a": 0.0, "b": 0.15}
        assert not diff["solver"]["changed"]
        agg = diff["aggregates"]
        assert agg["wall_time"]["delta"] == agg["wall_time"]["b"] - agg["wall_time"]["a"]
        assert isinstance(agg["iterations"]["delta"], int)
        assert agg["converged"] == {"a": True, "b": True}

    def test_policy_surplus_deltas(self, tax_store):
        store, pair = tax_store
        diff = diff_entries(store, pair[0].content_hash(), pair[1].content_hash())
        policy = diff["policy"]
        assert policy["states_compared"] >= 1
        assert policy["max_abs_policy_diff"] > 0  # a real reform moves the policy
        for state in policy["per_state"]:
            assert state["max_abs_policy_diff"] >= state["mean_abs_policy_diff"] >= 0
            if state["same_grid"]:
                assert state["surplus_delta_linf"] >= 0

    def test_hash_prefix_resolution(self, tax_store):
        store, pair = tax_store
        h_a, h_b = pair[0].content_hash(), pair[1].content_hash()
        diff = diff_entries(store, h_a[:10], h_b[:10])
        assert diff["a"]["spec_hash"] == h_a and diff["b"]["spec_hash"] == h_b

    def test_unknown_hash_raises(self, tax_store):
        store, pair = tax_store
        with pytest.raises(KeyError, match="no store entry"):
            diff_entries(store, "feedfeedfeedfeed", pair[1].content_hash())

    def test_self_diff_is_identity(self, tax_store):
        store, pair = tax_store
        h = pair[0].content_hash()
        diff = diff_entries(store, h, h)
        assert not diff["calibration"]["changed"]
        assert diff["policy"]["max_abs_policy_diff"] == 0.0
        text = format_diff(diff)
        assert "identical computation-defining content" in text

    def test_different_state_dims_skip_policy_section(self, tmp_path):
        # demographics-style pair: different num_generations means the two
        # policies live on incomparable domains — must skip, not crash
        def solve_spec(name, gens):
            return ScenarioSpec(
                name,
                calibration={"num_generations": gens, "num_states": 1, "beta": 0.8},
                solver={"grid_level": 2, "tolerance": 1e-3, "max_iterations": 12},
            )

        suite = ScenarioSuite("dims", [solve_spec("g4", 4), solve_spec("g5", 5)])
        store = ResultsStore(tmp_path / "store")
        assert run_suite(suite, store).ok
        diff = diff_entries(store, suite[0].content_hash(), suite[1].content_hash())
        assert "state-space dimensions differ" in diff["policy"]["skipped"]
        assert diff["calibration"]["changed"]["num_generations"] == {"a": 4, "b": 5}
        assert "comparison skipped" in format_diff(diff)

    def test_grid_level_mismatch_degrades_to_common_sample(self, tmp_path, capsys):
        # satellite regression: same state-space dimension, different
        # solver.grid_level — the surplus vectors have different shapes,
        # which used to surface as a raw numpy broadcast error.  The diff
        # must degrade to the common-sample policy comparison and report
        # surplus_delta_linf: null with a shape-mismatch note.
        def solve_spec(name, level):
            return ScenarioSpec(
                name,
                calibration={"num_generations": 4, "num_states": 1, "beta": 0.8},
                solver={"grid_level": level, "tolerance": 1e-3, "max_iterations": 6},
            )

        suite = ScenarioSuite("levels", [solve_spec("l1", 1), solve_spec("l2", 2)])
        store = ResultsStore(tmp_path / "store")
        assert run_suite(suite, store).ok
        diff = diff_entries(store, suite[0].content_hash(), suite[1].content_hash())
        policy = diff["policy"]
        assert "skipped" not in policy  # the sample comparison still runs
        assert policy["max_abs_policy_diff"] >= 0
        for state in policy["per_state"]:
            assert state["same_grid"] is False
            assert state["surplus_delta_linf"] is None  # explicit null, not absent
            assert "points" in state["surplus_note"]
        # JSON output carries the null; text output renders the note
        assert json.loads(json.dumps(diff))["policy"]["per_state"][0][
            "surplus_delta_linf"
        ] is None
        text = format_diff(diff)
        assert "grids differ" in text and "not comparable" in text
        code = cli_main(
            ["diff", suite[0].short_hash, suite[1].short_hash, "--store", str(store.root)]
        )
        assert code == 0
        assert "grids differ" in capsys.readouterr().out

    def test_interrupted_entry_diffs_without_policy(self, tmp_path, capsys):
        # workers save the spec before solving, so an interrupted entry
        # still yields calibration deltas; the policy section is skipped
        base = {"num_generations": 4, "num_states": 1, "beta": 0.8}
        solver = {"grid_level": 2, "tolerance": 1e-3, "max_iterations": 12}
        done = ScenarioSpec("done", calibration=base, solver=solver)
        halted = ScenarioSpec("halted", calibration={**base, "beta": 0.85}, solver=solver)
        store = ResultsStore(tmp_path / "store")
        assert run_suite(ScenarioSuite("a", [done]), store).ok
        run_suite(ScenarioSuite("b", [halted]), store, interrupt_after=1)
        diff = diff_entries(store, done.content_hash(), halted.content_hash())
        assert diff["calibration"]["changed"]["beta"] == {"a": 0.8, "b": 0.85}
        assert diff["policy"]["skipped"] == "not both completed"
        code = cli_main(
            ["diff", done.short_hash, halted.short_hash, "--store", str(store.root)]
        )
        assert code == 0  # the CLI reports the skip instead of crashing
        assert "comparison skipped" in capsys.readouterr().out

    def test_experiment_entries_skip_policy_section(self, tmp_path):
        suite = ScenarioSuite(
            "exp",
            [
                ScenarioSpec("p2", kind="ablations", params={"which": "partition",
                                                             "total_processes": 2}),
                ScenarioSpec("p4", kind="ablations", params={"which": "partition",
                                                             "total_processes": 4}),
            ],
        )
        store = ResultsStore(tmp_path / "store")
        assert run_suite(suite, store).ok
        diff = diff_entries(store, suite[0].content_hash(), suite[1].content_hash())
        assert set(diff["params"]["changed"]) == {"total_processes"}
        assert "skipped" in diff["policy"]
        assert "params" in format_diff(diff)


class TestDiffCLI:
    def test_text_output(self, tax_store, capsys):
        store, pair = tax_store
        code = cli_main(
            ["diff", pair[0].short_hash, pair[1].short_hash, "--store", str(store.root)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tau_capital" in out and "0.0 -> 0.15" in out
        assert "aggregates:" in out
        assert "wall_time" in out and "iterations" in out
        assert "policy" in out and "max |A-B|" in out

    def test_json_output_round_trips(self, tax_store, capsys):
        store, pair = tax_store
        code = cli_main(
            [
                "diff",
                pair[0].short_hash,
                pair[1].short_hash,
                "--store",
                str(store.root),
                "--json",
                "--samples",
                "16",
            ]
        )
        assert code == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["calibration"]["changed"]["tau_capital"]["b"] == 0.15
        assert diff["policy"]["samples"] == 16

    def test_unknown_hash_exit_code(self, tax_store, capsys):
        store, _pair = tax_store
        assert cli_main(["diff", "feedfeed", "deadbeef", "--store", str(store.root)]) == 2
        assert "no store entry" in capsys.readouterr().err


class TestCrossBackendDiff:
    """``diff`` across two stores on two different storage backends."""

    def _solve_spec(self, name, tau):
        return ScenarioSpec(
            name,
            calibration={"num_generations": 4, "num_states": 1, "beta": 0.8, "tau_labor": tau},
            solver={"grid_level": 2, "tolerance": 1e-3, "max_iterations": 12},
        )

    @pytest.fixture()
    def two_backend_stores(self, store_url_for):
        """Baseline solve in a file:// store, reform solve in an s3:// store."""
        baseline, reform = self._solve_spec("base", 0.1), self._solve_spec("reform", 0.2)
        local = ResultsStore.open(store_url_for("file", name="local"))
        remote = ResultsStore.open(store_url_for("s3", name="archive"))
        assert run_suite(ScenarioSuite("a", [baseline]), local).ok
        assert run_suite(ScenarioSuite("b", [reform]), remote).ok
        return local, remote, baseline, reform

    def test_diff_entries_across_backends(self, two_backend_stores):
        local, remote, baseline, reform = two_backend_stores
        diff = diff_entries(
            local, baseline.content_hash(), reform.content_hash(), store_b=remote
        )
        assert diff["calibration"]["changed"]["tau_labor"] == {"a": 0.1, "b": 0.2}
        # each side records which store (and hence backend) it came from
        assert diff["a"]["store"].startswith("file://")
        assert diff["b"]["store"].startswith("s3://")
        # the policy comparison loads result A from disk and result B
        # from the object store onto one common sample
        assert diff["policy"]["max_abs_policy_diff"] > 0

    def test_hash_b_resolves_in_store_b_only(self, two_backend_stores):
        local, remote, baseline, reform = two_backend_stores
        # the reform hash does not exist in the local store at all:
        # without store_b the lookup must fail, with it it must succeed
        with pytest.raises(KeyError, match="no (store|committed) entry"):
            diff_entries(local, baseline.content_hash(), reform.content_hash())
        with pytest.raises(KeyError, match="no store entry"):
            diff_entries(local, baseline.short_hash, reform.short_hash)
        diff = diff_entries(
            local, baseline.content_hash(), reform.short_hash, store_b=remote
        )
        assert diff["b"]["spec_hash"] == reform.content_hash()

    def test_cli_store_b_flag(self, two_backend_stores, capsys):
        local, remote, baseline, reform = two_backend_stores
        code = cli_main(
            [
                "diff",
                baseline.short_hash,
                reform.short_hash,
                "--store",
                local.url,
                "--store-b",
                remote.url,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tau_labor" in out and "0.1 -> 0.2" in out
        assert "@ file://" in out and "@ s3://" in out

    def test_cli_store_b_json_records_stores(self, two_backend_stores, capsys):
        local, remote, baseline, reform = two_backend_stores
        code = cli_main(
            [
                "diff",
                baseline.short_hash,
                reform.short_hash,
                "--store",
                local.url,
                "--store-b",
                remote.url,
                "--json",
                "--samples",
                "8",
            ]
        )
        assert code == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["a"]["store"] == local.url
        assert diff["b"]["store"] == remote.url
        assert diff["policy"]["samples"] == 8


class TestResumeCLI:
    def test_lists_resumable_checkpoints(self, tmp_path, capsys):
        spec = ScenarioSpec(
            "halted",
            calibration={"num_generations": 4, "num_states": 1, "beta": 0.8},
            solver={"grid_level": 2, "tolerance": 1e-3, "max_iterations": 12},
        )
        store = ResultsStore(tmp_path / "store")
        run_suite(ScenarioSuite("one", [spec]), store, interrupt_after=2)
        assert cli_main(["resume", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "halted" in out and "interrupted" in out
        assert spec.short_hash in out

    def test_json_listing(self, tmp_path, capsys):
        spec = ScenarioSpec(
            "halted-json",
            calibration={"num_generations": 4, "num_states": 1, "beta": 0.8},
            solver={"grid_level": 2, "tolerance": 1e-3, "max_iterations": 12},
        )
        store = ResultsStore(tmp_path / "store")
        run_suite(ScenarioSuite("one", [spec]), store, interrupt_after=1)
        assert cli_main(["resume", "--store", str(store.root), "--json"]) == 0
        infos = json.loads(capsys.readouterr().out)
        assert len(infos) == 1
        assert infos[0]["status"] == "interrupted"
        assert infos[0]["iterations_done"] == 1

    def test_empty_store(self, tmp_path, capsys):
        assert cli_main(["resume", "--store", str(tmp_path / "s")]) == 0
        assert "no resumable checkpoints" in capsys.readouterr().out
