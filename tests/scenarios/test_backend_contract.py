"""Backend-conformance suite: one contract, asserted against all backends.

Every test here is parametrized over ``file://``, ``mem://`` and
``s3://`` store URLs (the ``any_store_url`` fixture), so the storage
contract the :class:`ResultsStore` depends on — wholesale-atomic puts,
read-your-writes visibility, durable commit records, last-writer-wins
per hash, no-downgrade of completed entries, reindex self-healing,
checkpoint GC and kill/resume — is pinned down once and must hold
identically for every backend, current and future.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.scenarios import (
    ResultsStore,
    ScenarioSpec,
    ScenarioSuite,
    StoreURLError,
    backend_from_url,
    run_suite,
)
from repro.scenarios.__main__ import main as cli_main
from repro.scenarios.backends import COMMIT_LOG_PREFIX

# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #


def _payload_spec(i: int, name: str | None = None) -> ScenarioSpec:
    return ScenarioSpec(
        name or f"contract-{i}",
        kind="ablations",
        params={"which": "partition", "total_processes": 2 ** (1 + i)},
    )


def _tiny_solve_spec(name="tiny", **calibration) -> ScenarioSpec:
    cal = {"num_generations": 4, "num_states": 1, "beta": 0.8}
    cal.update(calibration)
    return ScenarioSpec(
        name,
        calibration=cal,
        solver={"grid_level": 2, "tolerance": 1e-3, "max_iterations": 12},
    )


@pytest.fixture
def backend(any_store_url):
    return backend_from_url(any_store_url)


@pytest.fixture
def store(any_store_url):
    return ResultsStore.open(any_store_url)


# --------------------------------------------------------------------------- #
# raw object contract
# --------------------------------------------------------------------------- #
class TestObjectContract:
    def test_put_get_round_trip_and_wholesale_overwrite(self, backend):
        backend.put("a/blob.bin", b"first contents")
        assert backend.get("a/blob.bin") == b"first contents"
        backend.put("a/blob.bin", b"2nd")
        assert backend.get("a/blob.bin") == b"2nd"  # replaced whole, no residue

    def test_get_missing_raises_filenotfound(self, backend):
        with pytest.raises(FileNotFoundError):
            backend.get("nope/missing.bin")

    def test_exists_and_delete_semantics(self, backend):
        assert not backend.exists("k")
        backend.put("k", b"x")
        assert backend.exists("k")
        assert backend.delete("k") is True
        assert not backend.exists("k")
        assert backend.delete("k", missing_ok=True) is False
        with pytest.raises(FileNotFoundError):
            backend.delete("k", missing_ok=False)

    def test_mtime_exists_and_missing_raises(self, backend):
        backend.put("stamped", b"x")
        assert backend.mtime("stamped") > 0
        with pytest.raises(FileNotFoundError):
            backend.mtime("never-written")

    def test_list_is_sorted_and_prefix_filtered(self, backend):
        for key in ("b/2", "a/1", "a/2", "c"):
            backend.put(key, b"x")
        assert backend.list() == ["a/1", "a/2", "b/2", "c"]
        assert backend.list("a/") == ["a/1", "a/2"]
        assert backend.list("zz") == []

    def test_visibility_across_instances(self, backend, any_store_url):
        # read-your-writes through a *separate* handle on the same URL —
        # what a runner worker reopening the store URL relies on
        backend.put("shared/entry.json", b"{}")
        other = backend_from_url(any_store_url)
        assert other.exists("shared/entry.json")
        assert other.get("shared/entry.json") == b"{}"
        other.put("shared/entry.json", b"{'v':2}")
        assert backend.get("shared/entry.json") == b"{'v':2}"

    def test_concurrent_same_key_puts_land_whole(self, backend):
        # the atomicity half of "atomic commit visibility": racing writers
        # of one key must produce one of the written values, never a splice
        blobs = [bytes([65 + i]) * 100_000 for i in range(8)]
        threads = [
            threading.Thread(target=backend.put, args=("contended.bin", blob))
            for blob in blobs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert backend.get("contended.bin") in blobs

    def test_traversal_keys_are_rejected(self, backend, tmp_path):
        # the shared key grammar holds on every backend: '..'/absolute/
        # empty-segment keys are rejected outright, so a key can never
        # read or write outside a filesystem-backed store root
        outside = tmp_path / "outside-sentinel.txt"
        for key in (
            "../outside-sentinel.txt",
            "../../etc/hostname",
            "/abs/path",
            "a//b",
            "a/./b",
            "",
        ):
            with pytest.raises(ValueError, match="key"):
                backend.put(key, b"escape")
            with pytest.raises(ValueError, match="key"):
                backend.get(key)
            # every object operation rejects uniformly, so code exercised
            # on one backend cannot silently pass malformed keys on another
            with pytest.raises(ValueError, match="key"):
                backend.exists(key)
            with pytest.raises(ValueError, match="key"):
                backend.delete(key)
            with pytest.raises(ValueError, match="key"):
                backend.mtime(key)
        assert not outside.exists()

    def test_blob_ref_round_trip(self, backend):
        ref = backend.ref("dir/obj.npz")
        assert ref.name == "obj.npz"
        assert not ref.exists()
        ref.write_bytes(b"payload")
        assert ref.exists() and ref.read_bytes() == b"payload"
        assert ref.mtime() > 0
        ref.unlink()
        assert not ref.exists()
        ref.unlink(missing_ok=True)  # idempotent
        with pytest.raises(FileNotFoundError):
            ref.unlink(missing_ok=False)


class TestCommitLogContract:
    def test_append_then_read_preserves_order_and_duplicates(self, backend):
        records = [{"spec_hash": f"h{i}", "status": "completed"} for i in range(5)]
        records.append(dict(records[0]))  # duplicates are part of the contract
        for rec in records:
            backend.append_commit(rec)
        assert backend.commit_records() == records

    def test_concurrent_appends_lose_nothing(self, backend):
        # 16 threads, one commit each: every record must come out whole —
        # O_APPEND interleaving for file://, per-commit objects elsewhere
        def append(i):
            backend.append_commit({"spec_hash": f"hash-{i:02d}", "wall_time": float(i)})

        threads = [threading.Thread(target=append, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        got = backend.commit_records()
        assert sorted(rec["spec_hash"] for rec in got) == [f"hash-{i:02d}" for i in range(16)]

    def test_clear_commit_log_drops_records_only(self, backend):
        backend.put("keep/entry.json", b"{}")
        backend.append_commit({"spec_hash": "h"})
        backend.clear_commit_log()
        assert backend.commit_records() == []
        assert backend.exists("keep/entry.json")


# --------------------------------------------------------------------------- #
# store-level contract
# --------------------------------------------------------------------------- #
class TestStoreContract:
    def test_commit_is_visible_to_fresh_store(self, store, any_store_url):
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {"ok": True}, wall_time=1.0))
        fresh = ResultsStore.open(any_store_url)
        assert fresh.has(spec)
        assert set(fresh.index()) == {spec.content_hash()}
        assert fresh.load_payload(spec) == {"ok": True}
        assert fresh.load_spec(spec) == spec

    def test_last_writer_wins_per_hash(self, store):
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {"worker": 1}, wall_time=1.0))
        store.commit_entry(store.write_payload(spec, {"worker": 2}, wall_time=2.0))
        assert store.load_payload(spec) == {"worker": 2}
        assert store.entry(spec)["wall_time"] == 2.0
        # the log keeps both commits; wall_times reports the latest
        assert store.wall_times()[spec.content_hash()] == 2.0

    def test_no_downgrade_of_completed_entries(self, store):
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {"ok": True}, wall_time=1.0))
        returned = store.commit_entry(
            store.failure_entry(spec, "failed", 0.1, "transient error")
        )
        assert returned["status"] == "completed"  # the existing entry won
        assert store.entry(spec)["status"] == "completed"
        assert store.has(spec)

    def test_reindex_self_heals_a_lost_log(self, store, any_store_url):
        specs = [_payload_spec(i) for i in range(3)]
        for spec in specs:
            store.commit_entry(store.write_payload(spec, {"i": spec.name}, wall_time=1.0))
        store.backend.clear_commit_log()
        assert store.index() == {}  # log-based discovery finds nothing
        assert store.has(specs[0])  # ...but direct entry reads still work
        healed = ResultsStore.open(any_store_url).reindex()
        assert set(healed) == {s.content_hash() for s in specs}

    def test_resolve_hash_auto_reindexes_on_miss(self, store):
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {}, wall_time=1.0))
        store.backend.clear_commit_log()
        assert store.resolve_hash(spec.content_hash()[:12]) == spec.content_hash()

    def test_wall_times_completed_beats_later_partial(self, store):
        # satellite regression: wall_times flows through the backend's
        # commit log, not os.path — and keeps its status-aware semantics
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {}, wall_time=30.0))
        store.commit_entry(store.failure_entry(spec, "interrupted", 2.0, "killed"))
        assert store.wall_times()[spec.content_hash()] == 30.0
        other = _payload_spec(1)
        store.commit_entry(store.failure_entry(other, "interrupted", 4.0, "killed"))
        assert store.wall_times()[other.content_hash()] == 4.0  # partial stands in

    def test_checkpoint_gc_policies(self, store):
        done = _payload_spec(0, name="done")
        store.commit_entry(store.write_payload(done, {}, wall_time=1.0))
        store.checkpoint_ref(done).write_bytes(b"stale")
        halted = []
        for i in range(1, 4):
            spec = _payload_spec(i, name=f"halted-{i}")
            store.commit_entry(store.failure_entry(spec, "interrupted", 1.0, "killed"))
            store.checkpoint_ref(spec).write_bytes(b"resumable")
            halted.append(spec)
            time.sleep(0.01)  # distinct mtimes for the newest-first ordering
        # completed checkpoints are always stale; resumable ones survive
        removed = store.gc_checkpoints()
        assert [p.name for p in removed] == ["checkpoint.npz"]
        assert len(store.list_checkpoints()) == 3
        # keep_last_n caps survivors at the newest
        removed = store.gc_checkpoints(keep_last_n=1)
        assert len(removed) == 2
        survivors = store.list_checkpoints()
        assert len(survivors) == 1
        assert survivors[0]["directory"] == store.scenario_key(halted[-1])
        # keep_on_failure=False drops the rest
        assert len(store.gc_checkpoints(keep_on_failure=False)) == 1
        assert store.list_checkpoints() == []

    def test_gc_scoped_to_hashes(self, store):
        mine, other = _payload_spec(0, name="mine"), _payload_spec(1, name="other")
        for spec in (mine, other):
            store.commit_entry(store.failure_entry(spec, "interrupted", 1.0, "killed"))
            store.checkpoint_ref(spec).write_bytes(b"resumable")
        removed = store.gc_checkpoints(keep_on_failure=False, hashes=[mine.content_hash()])
        assert len(removed) == 1
        assert store.checkpoint_ref(other).exists()

    def test_solve_kill_resume_round_trip(self, store):
        # checkpoints flow through the backend: a killed solve resumes
        # from its stored checkpoint identically on every backend
        suite = ScenarioSuite("one", [_tiny_solve_spec("kill-me")])
        broken = run_suite(suite, store, interrupt_after=1)
        assert broken.count("interrupted") == 1
        listed = store.list_checkpoints(with_progress=True)
        assert len(listed) == 1 and listed[0]["iterations_done"] == 1
        fixed = run_suite(suite, store)
        assert fixed.count("completed") == 1
        entry = store.entry(suite[0])
        assert entry["resumed"] is True
        assert store.load_result(suite[0]).converged
        assert not store.checkpoint_ref(suite[0]).exists()  # dropped post-commit

    def test_skip_by_hash_across_store_reopen(self, store, any_store_url):
        suite = ScenarioSuite("exp", [_payload_spec(0), _payload_spec(1)])
        assert run_suite(suite, store).count("completed") == 2
        again = run_suite(suite, ResultsStore.open(any_store_url))
        assert again.count("skipped") == 2

    def test_describe_lists_entries(self, store):
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {}, wall_time=1.0))
        text = store.describe()
        assert spec.name in text and store.url in text


# --------------------------------------------------------------------------- #
# backend-specific layout properties (asserted, not assumed)
# --------------------------------------------------------------------------- #
class TestLogLayouts:
    @pytest.mark.parametrize("scheme", ["mem", "s3"])
    def test_merged_log_backends_write_one_object_per_commit(self, scheme, store_url_for):
        store = ResultsStore.open(store_url_for(scheme))
        for i in range(3):
            spec = _payload_spec(i)
            store.commit_entry(store.write_payload(spec, {}, wall_time=1.0))
        log_objects = store.backend.list(COMMIT_LOG_PREFIX)
        assert len(log_objects) == 3  # one immutable object per commit
        assert set(store.index()) == {_payload_spec(i).content_hash() for i in range(3)}

    def test_file_backend_keeps_append_only_jsonl(self, store_url_for):
        store = ResultsStore.open(store_url_for("file"))
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {}, wall_time=1.0))
        assert store.backend.list(COMMIT_LOG_PREFIX) == []
        lines = store.log_path.read_text().splitlines()
        assert [json.loads(line)["spec_hash"] for line in lines] == [spec.content_hash()]

    def test_file_url_round_trips_awkward_path_characters(self, tmp_path):
        # '#', spaces and '%xx' in directory names must survive the
        # url-build/urlsplit/unquote round trip: a worker reopening a
        # non-round-tripping URL would commit into a different directory
        for dirname in ("runs#1", "with space", "odd%20name"):
            store = ResultsStore(tmp_path / dirname)
            spec = _payload_spec(0)
            store.commit_entry(store.write_payload(spec, {"ok": 1}, wall_time=1.0))
            reopened = ResultsStore.open(store.url)
            assert reopened.root == store.root, dirname
            assert reopened.load_payload(spec) == {"ok": 1}

    def test_file_store_layout_unchanged_from_plain_path_open(self, tmp_path):
        # ResultsStore(path) and ResultsStore.open(file://...) are the
        # same store: bytes written by one are read by the other
        store = ResultsStore(tmp_path / "runs")
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {"ok": 1}, wall_time=1.0))
        assert store.url == f"file://{(tmp_path / 'runs').as_posix()}"
        via_url = ResultsStore.open(store.url)
        assert via_url.load_payload(spec) == {"ok": 1}
        assert (tmp_path / "runs" / "manifest.log").exists()


# --------------------------------------------------------------------------- #
# URL parsing and process-safety guards
# --------------------------------------------------------------------------- #
class TestStoreURLErrors:
    @pytest.mark.parametrize(
        "url, message",
        [
            ("ftp://somewhere/store", "unknown store URL scheme"),
            ("not-a-url-at-all://", "unknown store URL scheme"),
            ("plain/relative/path", "not a store URL"),
            ("mem://", "namespace"),
            ("s3:///only-a-prefix?endpoint=/tmp/e", "bucket"),
            ("file://remotehost/share/store", "must be local"),
        ],
    )
    def test_malformed_urls_raise_store_url_error(self, url, message):
        with pytest.raises(StoreURLError, match=message):
            backend_from_url(url)

    def test_traversal_bucket_names_are_rejected(self, tmp_path):
        # a bucket of '..' must not escape the fake server's endpoint
        # directory — rejected at URL parse time and at the server
        from repro.scenarios import FakeObjectServer

        with pytest.raises(StoreURLError, match="bucket"):
            backend_from_url(f"s3://../escape?endpoint={tmp_path / 'srv'}")
        server = FakeObjectServer(tmp_path / "srv")
        for bucket in ("..", ".", "UPPER", "has/slash", "-edge"):
            with pytest.raises(ValueError, match="bucket"):
                server.put_object(bucket, "k", b"x")
        assert sorted(p.name for p in (tmp_path / "srv").iterdir()) == []

    def test_s3_without_endpoint_names_the_env_var(self, monkeypatch):
        monkeypatch.delenv("REPRO_S3_ENDPOINT", raising=False)
        with pytest.raises(StoreURLError, match="REPRO_S3_ENDPOINT"):
            backend_from_url("s3://bucket/prefix")

    def test_s3_endpoint_falls_back_to_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_S3_ENDPOINT", str(tmp_path / "ep"))
        backend = backend_from_url("s3://bucket/prefix")
        # the resolved endpoint is baked into the canonical URL, so
        # worker processes need no environment of their own
        assert "endpoint=" in backend.url
        backend.put("x", b"1")
        assert backend_from_url(backend.url).get("x") == b"1"

    def test_results_store_open_propagates(self):
        with pytest.raises(StoreURLError):
            ResultsStore.open("bogus://x")
        assert issubclass(StoreURLError, ValueError)

    def test_cli_reports_bad_store_url_as_usage_error(self, capsys):
        assert cli_main(["show", "--store", "bogus://x"]) == 2
        assert "unknown store URL scheme" in capsys.readouterr().err

    def test_real_s3_endpoint_is_config_only_boto3_wiring(self):
        # config-only wiring: an http endpoint selects the boto3-backed
        # client (never the bundled fake); without the optional boto3
        # dependency that request fails with a self-explaining error
        try:
            import boto3  # noqa: F401
        except ImportError:
            with pytest.raises(RuntimeError, match="boto3"):
                backend_from_url("s3://bucket/p?endpoint=https://s3.example.com")
        else:
            backend = backend_from_url("s3://bucket/p?endpoint=https://s3.example.com")
            assert type(backend.client).__name__ == "_Boto3Client"


class TestProcessSafetyGuard:
    def test_mem_store_refuses_process_executor(self, store_url_for):
        store = ResultsStore.open(store_url_for("mem"))
        suite = ScenarioSuite("one", [_payload_spec(0)])
        with pytest.raises(ValueError, match="in-process only"):
            run_suite(suite, store, executor="processes")

    def test_cli_reports_mem_processes_as_usage_error(self, capsys):
        # same clean exit-2 path as a typo'd --store URL, not a traceback
        from repro.scenarios import MemoryBackend

        code = cli_main(
            ["run", "smoke", "--store", "mem://cli-guard", "--executor", "processes"]
        )
        MemoryBackend.drop("cli-guard")
        assert code == 2
        assert "in-process only" in capsys.readouterr().err

    @pytest.mark.parametrize("scheme", ["file", "s3"])
    def test_process_shared_backends_accept_process_executor(self, scheme, store_url_for):
        store = ResultsStore.open(store_url_for(scheme))
        suite = ScenarioSuite("pair", [_payload_spec(0), _payload_spec(1)])
        report = run_suite(suite, store, executor="processes", num_workers=2)
        assert report.ok and report.count("completed") == 2


class TestEnvSelectedDefaultBackend:
    def test_batch_runs_on_env_selected_backend(self, env_store_url):
        # the fixture honours REPRO_STORE_URL: under CI's mem:// leg this
        # whole batch runs against the in-memory backend
        store = ResultsStore.open(env_store_url("batch"))
        suite = ScenarioSuite("exp", [_payload_spec(0), _payload_spec(1)])
        report = run_suite(suite, store)
        assert report.ok and report.count("completed") == 2
        assert run_suite(suite, store).count("skipped") == 2
        assert set(store.index()) == set(suite.hashes())
