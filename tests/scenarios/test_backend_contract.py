"""Backend-conformance suite: one contract, asserted against all backends.

Every test here is parametrized over ``file://``, ``mem://`` and
``s3://`` store URLs (the ``any_store_url`` fixture), so the storage
contract the :class:`ResultsStore` depends on — wholesale-atomic puts,
read-your-writes visibility, durable commit records, last-writer-wins
per hash, no-downgrade of completed entries, reindex self-healing,
checkpoint GC and kill/resume — is pinned down once and must hold
identically for every backend, current and future.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.scenarios import (
    ResultsStore,
    ScenarioSpec,
    ScenarioSuite,
    StoreURLError,
    backend_from_url,
    run_suite,
)
from repro.scenarios.__main__ import main as cli_main
from repro.scenarios.backends import (
    COMMIT_LOG_PREFIX,
    INDEX_SNAPSHOT_PREFIX,
    SNAPSHOT_PREFIX,
    load_index_union,
)

# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #


def _payload_spec(i: int, name: str | None = None) -> ScenarioSpec:
    return ScenarioSpec(
        name or f"contract-{i}",
        kind="ablations",
        params={"which": "partition", "total_processes": 2 ** (1 + i)},
    )


def _tiny_solve_spec(name="tiny", **calibration) -> ScenarioSpec:
    cal = {"num_generations": 4, "num_states": 1, "beta": 0.8}
    cal.update(calibration)
    return ScenarioSpec(
        name,
        calibration=cal,
        solver={"grid_level": 2, "tolerance": 1e-3, "max_iterations": 12},
    )


@pytest.fixture
def backend(any_store_url):
    return backend_from_url(any_store_url)


@pytest.fixture
def store(any_store_url):
    return ResultsStore.open(any_store_url)


# --------------------------------------------------------------------------- #
# raw object contract
# --------------------------------------------------------------------------- #
class TestObjectContract:
    def test_put_get_round_trip_and_wholesale_overwrite(self, backend):
        backend.put("a/blob.bin", b"first contents")
        assert backend.get("a/blob.bin") == b"first contents"
        backend.put("a/blob.bin", b"2nd")
        assert backend.get("a/blob.bin") == b"2nd"  # replaced whole, no residue

    def test_get_missing_raises_filenotfound(self, backend):
        with pytest.raises(FileNotFoundError):
            backend.get("nope/missing.bin")

    def test_exists_and_delete_semantics(self, backend):
        assert not backend.exists("k")
        backend.put("k", b"x")
        assert backend.exists("k")
        assert backend.delete("k") is True
        assert not backend.exists("k")
        assert backend.delete("k", missing_ok=True) is False
        with pytest.raises(FileNotFoundError):
            backend.delete("k", missing_ok=False)

    def test_mtime_exists_and_missing_raises(self, backend):
        backend.put("stamped", b"x")
        assert backend.mtime("stamped") > 0
        with pytest.raises(FileNotFoundError):
            backend.mtime("never-written")

    def test_list_is_sorted_and_prefix_filtered(self, backend):
        for key in ("b/2", "a/1", "a/2", "c"):
            backend.put(key, b"x")
        assert backend.list() == ["a/1", "a/2", "b/2", "c"]
        assert backend.list("a/") == ["a/1", "a/2"]
        assert backend.list("zz") == []

    def test_visibility_across_instances(self, backend, any_store_url):
        # read-your-writes through a *separate* handle on the same URL —
        # what a runner worker reopening the store URL relies on
        backend.put("shared/entry.json", b"{}")
        other = backend_from_url(any_store_url)
        assert other.exists("shared/entry.json")
        assert other.get("shared/entry.json") == b"{}"
        other.put("shared/entry.json", b"{'v':2}")
        assert backend.get("shared/entry.json") == b"{'v':2}"

    def test_concurrent_same_key_puts_land_whole(self, backend):
        # the atomicity half of "atomic commit visibility": racing writers
        # of one key must produce one of the written values, never a splice
        blobs = [bytes([65 + i]) * 100_000 for i in range(8)]
        threads = [
            threading.Thread(target=backend.put, args=("contended.bin", blob))
            for blob in blobs
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert backend.get("contended.bin") in blobs

    def test_traversal_keys_are_rejected(self, backend, tmp_path):
        # the shared key grammar holds on every backend: '..'/absolute/
        # empty-segment keys are rejected outright, so a key can never
        # read or write outside a filesystem-backed store root
        outside = tmp_path / "outside-sentinel.txt"
        for key in (
            "../outside-sentinel.txt",
            "../../etc/hostname",
            "/abs/path",
            "a//b",
            "a/./b",
            "",
        ):
            with pytest.raises(ValueError, match="key"):
                backend.put(key, b"escape")
            with pytest.raises(ValueError, match="key"):
                backend.get(key)
            # every object operation rejects uniformly, so code exercised
            # on one backend cannot silently pass malformed keys on another
            with pytest.raises(ValueError, match="key"):
                backend.exists(key)
            with pytest.raises(ValueError, match="key"):
                backend.delete(key)
            with pytest.raises(ValueError, match="key"):
                backend.mtime(key)
        assert not outside.exists()

    def test_blob_ref_round_trip(self, backend):
        ref = backend.ref("dir/obj.npz")
        assert ref.name == "obj.npz"
        assert not ref.exists()
        ref.write_bytes(b"payload")
        assert ref.exists() and ref.read_bytes() == b"payload"
        assert ref.mtime() > 0
        ref.unlink()
        assert not ref.exists()
        ref.unlink(missing_ok=True)  # idempotent
        with pytest.raises(FileNotFoundError):
            ref.unlink(missing_ok=False)


class TestCommitLogContract:
    def test_append_then_read_preserves_order_and_duplicates(self, backend):
        records = [{"spec_hash": f"h{i}", "status": "completed"} for i in range(5)]
        records.append(dict(records[0]))  # duplicates are part of the contract
        for rec in records:
            backend.append_commit(rec)
        assert backend.commit_records() == records

    def test_concurrent_appends_lose_nothing(self, backend):
        # 16 threads, one commit each: every record must come out whole —
        # O_APPEND interleaving for file://, per-commit objects elsewhere
        def append(i):
            backend.append_commit({"spec_hash": f"hash-{i:02d}", "wall_time": float(i)})

        threads = [threading.Thread(target=append, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        got = backend.commit_records()
        assert sorted(rec["spec_hash"] for rec in got) == [f"hash-{i:02d}" for i in range(16)]

    def test_clear_commit_log_drops_records_only(self, backend):
        backend.put("keep/entry.json", b"{}")
        backend.append_commit({"spec_hash": "h"})
        backend.clear_commit_log()
        assert backend.commit_records() == []
        assert backend.exists("keep/entry.json")


# --------------------------------------------------------------------------- #
# commit-log compaction: snapshot checkpoints fold the log
# --------------------------------------------------------------------------- #
class TestCompactionContract:
    """The :meth:`compact` half of the commit-log contract, uniformly on
    ``file://`` (manifest.log rotation), ``mem://`` and ``s3://`` (merged
    per-commit objects)."""

    @staticmethod
    def _records(n, start=0):
        return [
            {"spec_hash": f"hash-{i:04d}", "status": "completed", "wall_time": float(i + 1)}
            for i in range(start, start + n)
        ]

    def test_compact_preserves_records_and_resets_the_tail(self, backend):
        records = self._records(6)
        for rec in records:
            backend.append_commit(rec)
        assert backend.commit_log_tail_count() == 6
        report = backend.compact(grace_seconds=0)
        assert report["snapshot"] is not None
        assert report["snapshot"].startswith(SNAPSHOT_PREFIX)
        assert report["folded_records"] == 6 and report["total_records"] == 6
        assert backend.commit_records() == records  # content and order intact
        assert backend.commit_log_tail_count() == 0
        # appends after the fold are the new tail, read after the snapshot
        extra = self._records(2, start=6)
        for rec in extra:
            backend.append_commit(rec)
        assert backend.commit_log_tail_count() == 2
        assert backend.commit_records() == records + extra

    def test_double_compaction_is_idempotent(self, backend):
        records = self._records(4)
        for rec in records:
            backend.append_commit(rec)
        first = backend.compact(grace_seconds=0)
        again = backend.compact(grace_seconds=0)
        assert first["folded_records"] == 4
        assert again["folded_records"] == 0 and again["snapshot"] is None
        assert backend.commit_records() == records
        assert backend.list(SNAPSHOT_PREFIX) == [first["snapshot"]]

    def test_repeated_folds_accumulate_into_one_snapshot(self, backend):
        records = []
        for round_ in range(3):
            batch = self._records(3, start=3 * round_)
            for rec in batch:
                backend.append_commit(rec)
            records += batch
            backend.compact(grace_seconds=0)
            assert backend.commit_records() == records
            # older snapshots are superseded and collected
            assert len(backend.list(SNAPSHOT_PREFIX)) == 1

    def test_crash_between_fold_and_delete_self_heals(self, backend):
        """Fold-first ordering: a compactor that dies after writing the
        snapshot but before deleting the folded objects leaves only
        duplicates the merge dedupes by key — and the next compaction
        finishes the deletion."""
        records = self._records(5)
        for rec in records:
            backend.append_commit(rec)
        # an infinite grace window IS the crash: snapshot durable, folded
        # objects still present
        report = backend.compact(grace_seconds=1e9)
        assert report["snapshot"] is not None
        assert report["deleted_objects"] == 0 and report["kept_for_grace"] > 0
        assert backend.commit_records() == records  # no duplicates surface
        assert backend.commit_log_tail_count() == 0  # folded, just not deleted
        healed = backend.compact(grace_seconds=0)
        assert healed["deleted_objects"] > 0
        assert backend.commit_records() == records
        assert backend.compact(grace_seconds=0)["deleted_objects"] == 0

    def test_compactor_racing_appenders_loses_nothing(self, backend):
        """Appenders hammer the log while a compactor folds it repeatedly;
        every record must survive into the final snapshot."""
        per_thread, threads = 12, 4
        stop = threading.Event()

        def append_batch(tid):
            for i in range(per_thread):
                backend.append_commit({"spec_hash": f"race-{tid}-{i:03d}"})

        def compact_loop():
            while not stop.is_set():
                # a small grace keeps tail objects visible to readers that
                # raced the fold; the final compact below cleans up
                backend.compact(grace_seconds=0.05)

        workers = [
            threading.Thread(target=append_batch, args=(tid,)) for tid in range(threads)
        ]
        compactor = threading.Thread(target=compact_loop)
        compactor.start()
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        stop.set()
        compactor.join()
        time.sleep(0.06)  # let the last grace window lapse
        backend.compact(grace_seconds=0)
        got = sorted(rec["spec_hash"] for rec in backend.commit_records())
        want = sorted(
            f"race-{tid}-{i:03d}" for tid in range(threads) for i in range(per_thread)
        )
        assert got == want
        assert backend.commit_log_tail_count() == 0

    def test_concurrent_readers_see_whole_log_during_compaction(self, backend):
        records = self._records(30)
        for rec in records:
            backend.append_commit(rec)
        errors = []

        def read_loop():
            for _ in range(20):
                seen = {rec["spec_hash"] for rec in backend.commit_records()}
                missing = {rec["spec_hash"] for rec in records} - seen
                if missing:  # pragma: no cover - only on contract violation
                    errors.append(missing)

        reader = threading.Thread(target=read_loop)
        reader.start()
        backend.compact(grace_seconds=0.05)
        backend.compact(grace_seconds=0)
        reader.join()
        assert not errors, f"readers lost records mid-compaction: {errors[:3]}"

    def test_clear_commit_log_drops_snapshots_too(self, backend):
        for rec in self._records(3):
            backend.append_commit(rec)
        backend.compact(grace_seconds=0)
        assert backend.list(SNAPSHOT_PREFIX) != []
        backend.clear_commit_log()
        assert backend.commit_records() == []
        assert backend.list(SNAPSHOT_PREFIX) == []
        assert backend.commit_log_tail_count() == 0

    def test_compact_on_empty_log_is_a_noop(self, backend):
        report = backend.compact(grace_seconds=0)
        assert report["snapshot"] is None
        assert report["total_records"] == 0 and report["deleted_objects"] == 0
        assert backend.commit_records() == []

    @pytest.mark.parametrize("scheme", ["mem", "s3"])
    def test_skewed_clock_stamps_do_not_reorder_records(self, scheme, store_url_for):
        """Satellite regression: lexicographic key order embeds a writer's
        wall clock, so a skewed-fast writer used to jump the queue.  The
        merge orders by the record-level ``created_at_unix`` instead."""
        store = ResultsStore.open(store_url_for(scheme))
        backend = store.backend
        early = {"spec_hash": "h-early", "status": "completed",
                 "wall_time": 10.0, "created_at_unix": 100.0}
        late = {"spec_hash": "h-late", "status": "completed",
                "wall_time": 20.0, "created_at_unix": 200.0}
        # the skewed-fast writer stamps a huge wall clock into its KEY
        backend.put(
            f"{COMMIT_LOG_PREFIX}{9999999999.0:017.6f}-skewed.json",
            json.dumps(early).encode(),
        )
        backend.put(
            f"{COMMIT_LOG_PREFIX}{1000000000.0:017.6f}-ontime.json",
            json.dumps(late).encode(),
        )
        assert backend.commit_records() == [early, late]
        assert store.known_hashes() == ["h-early", "h-late"]  # true first-appearance
        # "most recent completed wins": same hash, inverted key order
        rerun = {"spec_hash": "h-early", "status": "completed",
                 "wall_time": 30.0, "created_at_unix": 300.0}
        backend.put(
            f"{COMMIT_LOG_PREFIX}{1000000001.0:017.6f}-ontime2.json",
            json.dumps(rerun).encode(),
        )
        assert store.wall_times()["h-early"] == 30.0
        # the ordering survives folding into a snapshot
        backend.compact(grace_seconds=0)
        assert backend.commit_records() == [early, late, rerun]
        assert store.wall_times()["h-early"] == 30.0


# --------------------------------------------------------------------------- #
# store-level contract
# --------------------------------------------------------------------------- #
class TestStoreContract:
    def test_commit_is_visible_to_fresh_store(self, store, any_store_url):
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {"ok": True}, wall_time=1.0))
        fresh = ResultsStore.open(any_store_url)
        assert fresh.has(spec)
        assert set(fresh.index()) == {spec.content_hash()}
        assert fresh.load_payload(spec) == {"ok": True}
        assert fresh.load_spec(spec) == spec

    def test_last_writer_wins_per_hash(self, store):
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {"worker": 1}, wall_time=1.0))
        store.commit_entry(store.write_payload(spec, {"worker": 2}, wall_time=2.0))
        assert store.load_payload(spec) == {"worker": 2}
        assert store.entry(spec)["wall_time"] == 2.0
        # the log keeps both commits; wall_times reports the latest
        assert store.wall_times()[spec.content_hash()] == 2.0

    def test_no_downgrade_of_completed_entries(self, store):
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {"ok": True}, wall_time=1.0))
        returned = store.commit_entry(
            store.failure_entry(spec, "failed", 0.1, "transient error")
        )
        assert returned["status"] == "completed"  # the existing entry won
        assert store.entry(spec)["status"] == "completed"
        assert store.has(spec)

    def test_reindex_self_heals_a_lost_log(self, store, any_store_url):
        specs = [_payload_spec(i) for i in range(3)]
        for spec in specs:
            store.commit_entry(store.write_payload(spec, {"i": spec.name}, wall_time=1.0))
        store.backend.clear_commit_log()
        assert store.index() == {}  # log-based discovery finds nothing
        assert store.has(specs[0])  # ...but direct entry reads still work
        healed = ResultsStore.open(any_store_url).reindex()
        assert set(healed) == {s.content_hash() for s in specs}

    def test_resolve_hash_auto_reindexes_on_miss(self, store):
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {}, wall_time=1.0))
        store.backend.clear_commit_log()
        assert store.resolve_hash(spec.content_hash()[:12]) == spec.content_hash()

    def test_wall_times_completed_beats_later_partial(self, store):
        # satellite regression: wall_times flows through the backend's
        # commit log, not os.path — and keeps its status-aware semantics
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {}, wall_time=30.0))
        store.commit_entry(store.failure_entry(spec, "interrupted", 2.0, "killed"))
        assert store.wall_times()[spec.content_hash()] == 30.0
        other = _payload_spec(1)
        store.commit_entry(store.failure_entry(other, "interrupted", 4.0, "killed"))
        assert store.wall_times()[other.content_hash()] == 4.0  # partial stands in

    def test_checkpoint_gc_policies(self, store):
        done = _payload_spec(0, name="done")
        store.commit_entry(store.write_payload(done, {}, wall_time=1.0))
        store.checkpoint_ref(done).write_bytes(b"stale")
        halted = []
        for i in range(1, 4):
            spec = _payload_spec(i, name=f"halted-{i}")
            store.commit_entry(store.failure_entry(spec, "interrupted", 1.0, "killed"))
            store.checkpoint_ref(spec).write_bytes(b"resumable")
            halted.append(spec)
            time.sleep(0.01)  # distinct mtimes for the newest-first ordering
        # completed checkpoints are always stale; resumable ones survive
        removed = store.gc_checkpoints()
        assert [p.name for p in removed] == ["checkpoint.npz"]
        assert len(store.list_checkpoints()) == 3
        # keep_last_n caps survivors at the newest
        removed = store.gc_checkpoints(keep_last_n=1)
        assert len(removed) == 2
        survivors = store.list_checkpoints()
        assert len(survivors) == 1
        assert survivors[0]["directory"] == store.scenario_key(halted[-1])
        # keep_on_failure=False drops the rest
        assert len(store.gc_checkpoints(keep_on_failure=False)) == 1
        assert store.list_checkpoints() == []

    def test_gc_scoped_to_hashes(self, store):
        mine, other = _payload_spec(0, name="mine"), _payload_spec(1, name="other")
        for spec in (mine, other):
            store.commit_entry(store.failure_entry(spec, "interrupted", 1.0, "killed"))
            store.checkpoint_ref(spec).write_bytes(b"resumable")
        removed = store.gc_checkpoints(keep_on_failure=False, hashes=[mine.content_hash()])
        assert len(removed) == 1
        assert store.checkpoint_ref(other).exists()

    def test_solve_kill_resume_round_trip(self, store):
        # checkpoints flow through the backend: a killed solve resumes
        # from its stored checkpoint identically on every backend
        suite = ScenarioSuite("one", [_tiny_solve_spec("kill-me")])
        broken = run_suite(suite, store, interrupt_after=1)
        assert broken.count("interrupted") == 1
        listed = store.list_checkpoints(with_progress=True)
        assert len(listed) == 1 and listed[0]["iterations_done"] == 1
        fixed = run_suite(suite, store)
        assert fixed.count("completed") == 1
        entry = store.entry(suite[0])
        assert entry["resumed"] is True
        assert store.load_result(suite[0]).converged
        assert not store.checkpoint_ref(suite[0]).exists()  # dropped post-commit

    def test_skip_by_hash_across_store_reopen(self, store, any_store_url):
        suite = ScenarioSuite("exp", [_payload_spec(0), _payload_spec(1)])
        assert run_suite(suite, store).count("completed") == 2
        again = run_suite(suite, ResultsStore.open(any_store_url))
        assert again.count("skipped") == 2

    def test_describe_lists_entries(self, store):
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {}, wall_time=1.0))
        text = store.describe()
        assert spec.name in text and store.url in text

    def test_resolve_full_length_hash_is_validated(self, store):
        """Satellite regression: a mistyped full-length hash must raise the
        clean KeyError at resolve time, not surface later as a bare
        FileNotFoundError from whatever backend key it composes."""
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {}, wall_time=1.0))
        full = spec.content_hash()
        assert store.resolve_hash(full) == full
        with pytest.raises(KeyError, match="no store entry matches"):
            store.resolve_hash("f" * 64)
        # a 64-char hash colliding with a real entry's 16-char directory
        # prefix but differing beyond it is a miss too
        impostor = full[:16] + "f" * 48
        if impostor != full:
            with pytest.raises(KeyError, match="no store entry matches"):
                store.resolve_hash(impostor)
        # ...and a full hash whose log record was lost still resolves
        # through the reindex retry, exactly like prefixes do
        store.backend.clear_commit_log()
        assert store.resolve_hash(full) == full

    def test_reindex_after_clear_recovers_everything_post_compaction(
        self, store, any_store_url
    ):
        """Snapshot-aware self-healing: compact, drop the whole log
        (snapshot included), and reindex must still recover every entry
        from the authoritative ``entry.json`` objects."""
        specs = [_payload_spec(i) for i in range(4)]
        for spec in specs:
            store.commit_entry(store.write_payload(spec, {"i": spec.name}, wall_time=1.0))
        store.compact(grace_seconds=0)
        store.backend.clear_commit_log()
        assert store.index() == {}
        healed = ResultsStore.open(any_store_url).reindex()
        assert set(healed) == {s.content_hash() for s in specs}
        # and the healed log compacts cleanly again
        store.compact(grace_seconds=0)
        assert set(store.index()) == {s.content_hash() for s in specs}

    def test_checkpoint_gc_ties_keep_the_highest_iteration(self, store_url_for):
        """Satellite regression: ``keep_last_n`` ordered purely by backend
        mtime, which is coarse upload-time on object stores — a same-second
        tie could delete the newest checkpoint.  Within an mtime tie the
        iteration number parsed from an iteration-stamped key now decides;
        across *distinct* mtimes recency still rules, so a stale
        high-iteration checkpoint cannot outrank a fresh canonical one."""
        store = ResultsStore.open(store_url_for("file"))
        halted = []
        for i, iteration in enumerate([12, 5, 3]):  # most-advanced written FIRST
            spec = _payload_spec(i, name=f"tied-{i}")
            store.commit_entry(store.failure_entry(spec, "interrupted", 1.0, "killed"))
            key = f"{store.scenario_key(spec)}/checkpoint-{iteration}.npz"
            store.backend.put(key, b"resumable")
            halted.append((spec, iteration))
        # coarse object-store clock: all three land on one mtime tick
        stamp = time.time() - 60
        for spec, iteration in halted:
            os.utime(
                store.root / store.scenario_key(spec) / f"checkpoint-{iteration}.npz",
                (stamp, stamp),
            )
        listed = store.list_checkpoints()
        assert [i["key_iteration"] for i in listed] == [12, 5, 3]
        # an undefined/arbitrary tie order could have kept iteration 3;
        # the iteration number is the authoritative progress marker
        removed = store.gc_checkpoints(keep_last_n=1)
        assert len(removed) == 2
        survivors = store.list_checkpoints()
        assert len(survivors) == 1
        assert survivors[0]["key_iteration"] == 12
        assert survivors[0]["directory"] == store.scenario_key(halted[0][0])
        # ...but a genuinely fresher canonical checkpoint.npz outranks the
        # stale iteration-stamped survivor: iterations of different
        # scenarios are never compared across distinct mtimes
        fresh = _payload_spec(9, name="fresh")
        store.commit_entry(store.failure_entry(fresh, "interrupted", 1.0, "killed"))
        store.checkpoint_ref(fresh).write_bytes(b"resumable")
        assert store.list_checkpoints()[0]["directory"] == store.scenario_key(fresh)

    def test_auto_compact_tail_env_typo_does_not_crash_open(
        self, store_url_for, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE_AUTO_COMPACT_TAIL", "off")
        store = ResultsStore.open(store_url_for("file", name="env-typo"))
        assert store.auto_compact_tail == 512  # fell back to the default


class TestStoreCompaction:
    """Store-level compaction: O(tail) indexing and auto-compaction."""

    def _fill(self, store, hashes=10, commits_per_hash=100):
        specs = [_payload_spec(i) for i in range(hashes)]
        for spec in specs:
            store.commit_entry(store.write_payload(spec, {"i": spec.name}, wall_time=1.0))
        # simulate a long-lived store: re-run commit records accumulate in
        # the log without rewriting the entries
        for spec in specs:
            base = store.entry(spec)
            for rerun in range(commits_per_hash - 1):
                store.backend.append_commit(
                    {
                        "spec_hash": spec.content_hash(),
                        "name": spec.name,
                        "kind": spec.kind,
                        "status": "completed",
                        "wall_time": 1.0 + rerun,
                        "created_at_unix": base["created_at_unix"] + rerun + 1,
                    }
                )
        return specs

    @pytest.mark.parametrize("scheme", ["mem", "s3"])
    def test_index_after_compaction_is_one_snapshot_plus_tail(
        self, scheme, store_url_for
    ):
        """Acceptance: 1,000 committed records index through ONE snapshot
        object plus the un-folded tail — object ``get`` calls drop from
        O(total commits ever) to O(tail)."""
        store = ResultsStore.open(store_url_for(scheme))
        store.auto_compact_tail = 0  # count the uncompacted baseline honestly
        specs = self._fill(store, hashes=10, commits_per_hash=100)
        backend = store.backend
        counted = {"get": 0}
        original_get = backend.get

        def counting_get(key):
            counted["get"] += 1
            return original_get(key)

        backend.get = counting_get
        expected = {s.content_hash() for s in specs}
        assert set(store.index()) == expected
        baseline = counted["get"]
        assert baseline >= 1000  # one read per commit object, plus entries

        report = store.compact(grace_seconds=0)
        assert report["total_records"] == 1000
        counted["get"] = 0
        assert set(store.index()) == expected
        compacted = counted["get"]
        # one snapshot read + 10 entry.json reads (+0 tail objects)
        assert compacted <= 1 + len(specs) + 2
        assert compacted < baseline / 20

        # fresh appends are read individually again — O(tail), not O(total)
        store.commit_entry(store.write_payload(specs[0], {"rerun": True}, wall_time=2.0))
        counted["get"] = 0
        assert set(store.index()) == expected
        assert counted["get"] <= 1 + 1 + len(specs) + 2

    def test_index_auto_compacts_past_the_tail_threshold(self, store):
        store.auto_compact_tail = 8
        specs = [_payload_spec(i) for i in range(3)]
        for spec in specs:
            store.commit_entry(store.write_payload(spec, {}, wall_time=1.0))
        assert store.backend.commit_log_tail_count() == 3
        store.index()  # under threshold: no compaction
        assert store.backend.commit_log_tail_count() == 3
        for i, spec in enumerate(specs * 2):
            # re-run commits of the same hashes land in the log as-is
            store.backend.append_commit(
                {"spec_hash": spec.content_hash(), "status": "completed",
                 "wall_time": 2.0 + i}
            )
        assert store.backend.commit_log_tail_count() == 9
        assert set(store.index()) == {s.content_hash() for s in specs}
        # 9 > 8: index folded the log as housekeeping (grace window keeps
        # the folded objects around; the tail count is what matters)
        assert store.backend.commit_log_tail_count() == 0
        assert len(store.log_records()) == 9

    def test_auto_compact_threshold_from_environment(self, store_url_for, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_AUTO_COMPACT_TAIL", "7")
        store = ResultsStore.open(store_url_for("file", name="env-thresh"))
        assert store.auto_compact_tail == 7
        monkeypatch.setenv("REPRO_STORE_AUTO_COMPACT_TAIL", "0")
        disabled = ResultsStore.open(store_url_for("file", name="env-off"))
        assert disabled.auto_compact_tail == 0

    def test_kill_resume_survives_a_compacted_store(self, store):
        """Compaction between the kill and the resume must not disturb
        checkpoints or skip-by-hash discovery."""
        suite = ScenarioSuite("one", [_tiny_solve_spec("compact-kill")])
        broken = run_suite(suite, store, interrupt_after=1)
        assert broken.count("interrupted") == 1
        store.compact(grace_seconds=0)
        assert len(store.list_checkpoints()) == 1  # checkpoint untouched
        fixed = run_suite(suite, store)
        assert fixed.count("completed") == 1
        assert store.entry(suite[0])["resumed"] is True
        store.compact(grace_seconds=0)
        assert run_suite(suite, store).count("skipped") == 1

    def test_cli_compact_reports_and_is_idempotent(self, store_url_for, capsys):
        url = store_url_for("s3", name="cli-compact")
        store = ResultsStore.open(url)
        for i in range(3):
            spec = _payload_spec(i)
            store.commit_entry(store.write_payload(spec, {}, wall_time=1.0))
        assert cli_main(["compact", "--store", url, "--grace", "0"]) == 0
        out = capsys.readouterr().out
        assert "folded 3 record(s)" in out and "snapshot-" in out
        assert store.backend.list(COMMIT_LOG_PREFIX) == []
        assert cli_main(["compact", "--store", url, "--grace", "0"]) == 0
        assert "nothing to compact (3 record(s))" in capsys.readouterr().out
        assert cli_main(["compact", "--store", url, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["total_records"] == 3 and report["snapshot"] is None
        # show still answers through the snapshot
        assert cli_main(["show", "--store", url]) == 0
        assert "3 entry(ies)" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# queryable secondary index (folded at compaction, tail-merged at read)
# --------------------------------------------------------------------------- #
class TestQueryIndex:
    """Conformance of the ``index-snapshots/`` sidecar + ``query()`` path."""

    def _commit_payloads(self, store, n, wall=lambda i: float(i + 1)):
        specs = [_payload_spec(i) for i in range(n)]
        for i, spec in enumerate(specs):
            store.commit_entry(store.write_payload(spec, {"i": i}, wall_time=wall(i)))
        return specs

    def test_compaction_folds_index_sidecar(self, store):
        specs = self._commit_payloads(store, 5)
        assert store.backend.list(INDEX_SNAPSHOT_PREFIX) == []
        report = store.compact(grace_seconds=0)
        keys = store.backend.list(INDEX_SNAPSHOT_PREFIX)
        assert keys == [report["index_snapshot"]]
        assert report["index_records"] == 5
        # the sidecar shares the commit snapshot's fold sequence
        seq = report["snapshot"].rsplit("/", 1)[-1][len("snapshot-"):]
        assert keys[0].endswith(f"index-{seq}")
        union, union_keys = load_index_union(store.backend)
        assert union_keys == keys
        assert set(union) == {s.content_hash() for s in specs}
        rec = union[specs[3].content_hash()]
        assert rec["status"] == "completed"
        assert rec["params.total_processes"] == 2**4
        assert rec["wall_time"] == 4.0

    def test_query_matches_full_index_scan(self, store):
        specs = self._commit_payloads(store, 6)
        store.commit_entry(
            store.failure_entry(_payload_spec(6), "interrupted", 0.5, "killed")
        )
        store.compact(grace_seconds=0)
        ground_truth = {
            h
            for h, e in store.index().items()
            if e.get("status") == "completed"
            and e.get("params", {}).get("total_processes", 0) > 4
        }
        hits = store.query(where=["total_processes>4"], status="completed")
        assert {r["spec_hash"] for r in hits} == ground_truth
        assert len(hits) == 4  # 2**(1+i) > 4 for i in 2..5
        # conjunctions, dotted fields, !=, string equality and hash prefix
        assert store.query(where=["params.total_processes>=8", "total_processes<=16"])
        assert all(
            r["params.which"] == "partition" for r in store.query(where=["which=partition"])
        )
        assert not store.query(where=["which!=partition"])
        some = specs[0].content_hash()
        assert [r["spec_hash"] for r in store.query(hash_prefix=some[:12])] == [some]
        # unknown fields match nothing; malformed predicates raise
        assert store.query(where=["no_such_field>1"]) == []
        with pytest.raises(ValueError):
            store.query(where=["no-operator-here"])

    def test_unfolded_tail_is_visible_to_queries(self, store):
        self._commit_payloads(store, 2)
        store.compact(grace_seconds=0)
        # a commit after the fold must be queryable immediately...
        late = _payload_spec(7)
        store.commit_entry(store.write_payload(late, {}, wall_time=9.0))
        hits = store.query(where=["total_processes=256"])
        assert [r["spec_hash"] for r in hits] == [late.content_hash()]
        # ...and so must a status change of an already-folded hash
        # (stale sidecar record loses to the winning tail record)
        redo = _payload_spec(0)
        store.commit_entry(store.write_payload(redo, {"rerun": True}, wall_time=77.0))
        rec = next(
            r for r in store.query() if r["spec_hash"] == redo.content_hash()
        )
        assert rec["wall_time"] == 77.0
        assert store.wall_times()[redo.content_hash()] == 77.0

    def test_racing_compactors_union_safely(self, store, any_store_url):
        """Two compactors folding at different times leave sidecars that
        union per hash (newest fold wins) under the grace-window protocol."""
        specs = self._commit_payloads(store, 2)
        store.compact(grace_seconds=10_000)  # everything kept for grace
        late = _payload_spec(5)
        other = ResultsStore.open(any_store_url)
        other.commit_entry(other.write_payload(late, {}, wall_time=3.0))
        other.compact(grace_seconds=10_000)
        assert len(store.backend.list(INDEX_SNAPSHOT_PREFIX)) == 2
        union, _keys = load_index_union(store.backend)
        expected = {s.content_hash() for s in specs} | {late.content_hash()}
        assert set(union) == expected
        assert {r["spec_hash"] for r in store.query(status="completed")} == expected
        # once the grace window is waived the superseded sidecar is GC'd
        store.compact(grace_seconds=0)
        assert len(store.backend.list(INDEX_SNAPSHOT_PREFIX)) == 1
        assert {r["spec_hash"] for r in store.query(status="completed")} == expected

    @pytest.mark.parametrize("scheme", ["mem", "s3"])
    def test_query_on_compacted_store_is_o_snapshot_plus_tail(
        self, scheme, store_url_for
    ):
        """Acceptance: a filtered query on a 1,000-entry compacted store
        costs O(index snapshot + tail) gets — no per-entry reads."""
        store = ResultsStore.open(store_url_for(scheme))
        store.auto_compact_tail = 0
        specs = [
            ScenarioSpec(
                f"q{i}",
                kind="ablations",
                params={"which": "partition", "total_processes": 2, "i": i},
            )
            for i in range(1000)
        ]
        for i, spec in enumerate(specs):
            store.commit_entry(
                store.write_payload(spec, {"i": i}, wall_time=float(i % 10 + 1))
            )
        store.compact(grace_seconds=0)
        backend = store.backend
        counted = {"get": 0, "entry_gets": 0}
        original_get = backend.get

        def counting_get(key):
            counted["get"] += 1
            if key.endswith("/entry.json"):
                counted["entry_gets"] += 1
            return original_get(key)

        backend.get = counting_get
        hits = store.query(where=["i>=990"], status="completed")
        assert len(hits) == 10
        assert counted["entry_gets"] == 0  # served entirely from the sidecar
        assert counted["get"] <= 8  # index sidecar + commit snapshot + slack
        # consistent with the ground truth of a full entry scan
        backend.get = original_get
        expected = {
            h for h, e in store.index().items() if e.get("params", {}).get("i", -1) >= 990
        }
        assert {r["spec_hash"] for r in hits} == expected
        # a fresh tail commit costs O(tail) extra, still no entry reads
        store.commit_entry(store.write_payload(specs[0], {"rerun": True}, wall_time=42.0))
        counted.update(get=0, entry_gets=0)
        backend.get = counting_get
        assert len(store.query(where=["i>=990"])) == 10
        assert counted["entry_gets"] <= 1 and counted["get"] <= 10

    def test_cli_query_subcommand(self, store_url_for, capsys):
        url = store_url_for("s3", name="cli-query")
        store = ResultsStore.open(url)
        self._commit_payloads(store, 4)
        store.compact(grace_seconds=0)
        code = cli_main(
            ["query", "--store", url, "--where", "total_processes>4",
             "--status", "completed", "--json"]
        )
        assert code == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 2  # 8 and 16
        assert {r["params.total_processes"] for r in records} == {8, 16}
        assert cli_main(["query", "--store", url, "--where", "total_processes=8"]) == 0
        out = capsys.readouterr().out
        assert "1 matching entry(ies)" in out and "contract-2" in out
        assert cli_main(["query", "--store", url, "--where", "bogus"]) == 2
        assert "malformed predicate" in capsys.readouterr().err

    def test_negative_env_values_warn_once(self, store_url_for, monkeypatch, caplog):
        import logging

        from repro.scenarios.backends.retry import (
            RETRIES_ENV,
            RETRY_BASE_ENV,
            _env_float,
            _env_int,
        )

        monkeypatch.setenv("REPRO_STORE_AUTO_COMPACT_TAIL", "-512")
        with caplog.at_level(logging.WARNING):
            store = ResultsStore.open(store_url_for("file", name="env-neg"))
        assert store.auto_compact_tail == 0
        assert sum("clamping negative" in r.message for r in caplog.records) == 1
        caplog.clear()
        monkeypatch.setenv(RETRIES_ENV, "-3")
        monkeypatch.setenv(RETRY_BASE_ENV, "-0.5")
        with caplog.at_level(logging.WARNING):
            assert _env_int(RETRIES_ENV, 3) == 0
            assert _env_float(RETRY_BASE_ENV, 0.05) == 0.0
        assert sum("clamping negative" in r.message for r in caplog.records) == 2


# --------------------------------------------------------------------------- #
# backend-specific layout properties (asserted, not assumed)
# --------------------------------------------------------------------------- #
class TestLogLayouts:
    @pytest.mark.parametrize("scheme", ["mem", "s3"])
    def test_merged_log_backends_write_one_object_per_commit(self, scheme, store_url_for):
        store = ResultsStore.open(store_url_for(scheme))
        for i in range(3):
            spec = _payload_spec(i)
            store.commit_entry(store.write_payload(spec, {}, wall_time=1.0))
        log_objects = store.backend.list(COMMIT_LOG_PREFIX)
        assert len(log_objects) == 3  # one immutable object per commit
        assert set(store.index()) == {_payload_spec(i).content_hash() for i in range(3)}

    def test_file_backend_keeps_append_only_jsonl(self, store_url_for):
        store = ResultsStore.open(store_url_for("file"))
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {}, wall_time=1.0))
        assert store.backend.list(COMMIT_LOG_PREFIX) == []
        lines = store.log_path.read_text().splitlines()
        assert [json.loads(line)["spec_hash"] for line in lines] == [spec.content_hash()]

    def test_file_url_round_trips_awkward_path_characters(self, tmp_path):
        # '#', spaces and '%xx' in directory names must survive the
        # url-build/urlsplit/unquote round trip: a worker reopening a
        # non-round-tripping URL would commit into a different directory
        for dirname in ("runs#1", "with space", "odd%20name"):
            store = ResultsStore(tmp_path / dirname)
            spec = _payload_spec(0)
            store.commit_entry(store.write_payload(spec, {"ok": 1}, wall_time=1.0))
            reopened = ResultsStore.open(store.url)
            assert reopened.root == store.root, dirname
            assert reopened.load_payload(spec) == {"ok": 1}

    def test_file_store_layout_unchanged_from_plain_path_open(self, tmp_path):
        # ResultsStore(path) and ResultsStore.open(file://...) are the
        # same store: bytes written by one are read by the other
        store = ResultsStore(tmp_path / "runs")
        spec = _payload_spec(0)
        store.commit_entry(store.write_payload(spec, {"ok": 1}, wall_time=1.0))
        assert store.url == f"file://{(tmp_path / 'runs').as_posix()}"
        via_url = ResultsStore.open(store.url)
        assert via_url.load_payload(spec) == {"ok": 1}
        assert (tmp_path / "runs" / "manifest.log").exists()


# --------------------------------------------------------------------------- #
# URL parsing and process-safety guards
# --------------------------------------------------------------------------- #
class TestStoreURLErrors:
    @pytest.mark.parametrize(
        "url, message",
        [
            ("ftp://somewhere/store", "unknown store URL scheme"),
            ("not-a-url-at-all://", "unknown store URL scheme"),
            ("plain/relative/path", "not a store URL"),
            ("mem://", "namespace"),
            ("s3:///only-a-prefix?endpoint=/tmp/e", "bucket"),
            ("file://remotehost/share/store", "must be local"),
        ],
    )
    def test_malformed_urls_raise_store_url_error(self, url, message):
        with pytest.raises(StoreURLError, match=message):
            backend_from_url(url)

    def test_traversal_bucket_names_are_rejected(self, tmp_path):
        # a bucket of '..' must not escape the fake server's endpoint
        # directory — rejected at URL parse time and at the server
        from repro.scenarios import FakeObjectServer

        with pytest.raises(StoreURLError, match="bucket"):
            backend_from_url(f"s3://../escape?endpoint={tmp_path / 'srv'}")
        server = FakeObjectServer(tmp_path / "srv")
        for bucket in ("..", ".", "UPPER", "has/slash", "-edge"):
            with pytest.raises(ValueError, match="bucket"):
                server.put_object(bucket, "k", b"x")
        assert sorted(p.name for p in (tmp_path / "srv").iterdir()) == []

    def test_s3_without_endpoint_names_the_env_var(self, monkeypatch):
        monkeypatch.delenv("REPRO_S3_ENDPOINT", raising=False)
        with pytest.raises(StoreURLError, match="REPRO_S3_ENDPOINT"):
            backend_from_url("s3://bucket/prefix")

    def test_s3_endpoint_falls_back_to_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_S3_ENDPOINT", str(tmp_path / "ep"))
        backend = backend_from_url("s3://bucket/prefix")
        # the resolved endpoint is baked into the canonical URL, so
        # worker processes need no environment of their own
        assert "endpoint=" in backend.url
        backend.put("x", b"1")
        assert backend_from_url(backend.url).get("x") == b"1"

    def test_results_store_open_propagates(self):
        with pytest.raises(StoreURLError):
            ResultsStore.open("bogus://x")
        assert issubclass(StoreURLError, ValueError)

    def test_cli_reports_bad_store_url_as_usage_error(self, capsys):
        assert cli_main(["show", "--store", "bogus://x"]) == 2
        assert "unknown store URL scheme" in capsys.readouterr().err

    def test_real_s3_endpoint_is_config_only_boto3_wiring(self):
        # config-only wiring: an http endpoint selects the boto3-backed
        # client (never the bundled fake); without the optional boto3
        # dependency that request fails with a self-explaining error
        try:
            import boto3  # noqa: F401
        except ImportError:
            with pytest.raises(RuntimeError, match="boto3"):
                backend_from_url("s3://bucket/p?endpoint=https://s3.example.com")
        else:
            backend = backend_from_url("s3://bucket/p?endpoint=https://s3.example.com")
            assert type(backend.client).__name__ == "_Boto3Client"


class TestProcessSafetyGuard:
    def test_mem_store_refuses_process_executor(self, store_url_for):
        store = ResultsStore.open(store_url_for("mem"))
        suite = ScenarioSuite("one", [_payload_spec(0)])
        with pytest.raises(ValueError, match="in-process only"):
            run_suite(suite, store, executor="processes")

    def test_cli_reports_mem_processes_as_usage_error(self, capsys):
        # same clean exit-2 path as a typo'd --store URL, not a traceback
        from repro.scenarios import MemoryBackend

        code = cli_main(
            ["run", "smoke", "--store", "mem://cli-guard", "--executor", "processes"]
        )
        MemoryBackend.drop("cli-guard")
        assert code == 2
        assert "in-process only" in capsys.readouterr().err

    @pytest.mark.parametrize("scheme", ["file", "s3"])
    def test_process_shared_backends_accept_process_executor(self, scheme, store_url_for):
        store = ResultsStore.open(store_url_for(scheme))
        suite = ScenarioSuite("pair", [_payload_spec(0), _payload_spec(1)])
        report = run_suite(suite, store, executor="processes", num_workers=2)
        assert report.ok and report.count("completed") == 2


class TestEnvSelectedDefaultBackend:
    def test_batch_runs_on_env_selected_backend(self, env_store_url):
        # the fixture honours REPRO_STORE_URL: under CI's mem:// leg this
        # whole batch runs against the in-memory backend
        store = ResultsStore.open(env_store_url("batch"))
        suite = ScenarioSuite("exp", [_payload_spec(0), _payload_spec(1)])
        report = run_suite(suite, store)
        assert report.ok and report.count("completed") == 2
        assert run_suite(suite, store).count("skipped") == 2
        assert set(store.index()) == set(suite.hashes())
