"""Shared fixtures for the scenario-engine tests: store-URL factories.

The storage-backend tests need fresh, isolated store URLs per test for
each of the three backends; :func:`make_store_url` builds them (unique
``mem://`` namespaces, per-test fake-server endpoint directories for
``s3://``).

``REPRO_STORE_URL`` reroutes the *default* store fixtures onto another
backend — ``REPRO_STORE_URL=mem://`` is how CI's matrix leg re-runs the
scenario tests against the in-memory backend.  Only the URL's *scheme*
is consulted; the fixtures always build fresh isolated stores of that
scheme per test (never a shared namespace/bucket from the variable).
Tests that genuinely need a local filesystem or a process-shared
backend request those schemes explicitly and are unaffected.
"""

from __future__ import annotations

import os
import uuid

import pytest

from repro.scenarios import MemoryBackend

SCHEMES = ("file", "mem", "s3")


def _drop_mem_namespaces(urls) -> None:
    """Evict the test's mem:// namespaces from the process-global registry
    (fixture teardown — without this every mem:// test would leak its full
    store contents for the rest of the pytest session)."""
    for url in urls:
        if url.startswith("mem://"):
            MemoryBackend.drop(url[len("mem://"):])


def make_store_url(scheme: str, tmp_path, name: str = "store") -> str:
    """A fresh store URL of the given scheme, isolated per test."""
    if scheme == "file":
        return f"file://{(tmp_path / name).absolute().as_posix()}"
    if scheme == "mem":
        return f"mem://{uuid.uuid4().hex[:12]}-{name}"
    if scheme == "s3":
        live = os.environ.get("REPRO_S3_ENDPOINT", "").strip()
        if live.startswith(("http://", "https://")):
            # CI's containerized-MinIO leg: run the same tests over the
            # real boto3 client; a unique per-test prefix inside the
            # shared bucket keeps stores isolated without bucket churn
            return f"s3://test-bucket/{uuid.uuid4().hex[:12]}/{name}?endpoint={live}"
        endpoint = (tmp_path / "object-store-endpoint").absolute().as_posix()
        return f"s3://test-bucket/{name}?endpoint={endpoint}"
    raise ValueError(f"unknown test scheme {scheme!r}")


@pytest.fixture(params=SCHEMES)
def any_store_url(request, tmp_path) -> str:
    """One fresh store URL per backend scheme — the conformance axis."""
    url = make_store_url(request.param, tmp_path)
    yield url
    _drop_mem_namespaces([url])


@pytest.fixture
def store_url_for(tmp_path):
    """Factory fixture: ``store_url_for(scheme, name=...)`` -> fresh URL."""
    created: list = []

    def make(scheme: str, name: str = "store") -> str:
        url = make_store_url(scheme, tmp_path, name)
        created.append(url)
        return url

    yield make
    _drop_mem_namespaces(created)


@pytest.fixture
def env_store_url(tmp_path):
    """Factory for store URLs on the environment-selected default backend.

    Defaults to ``file://`` under ``tmp_path``.  Only the *scheme* of
    ``REPRO_STORE_URL`` is used (any namespace/bucket in the variable is
    ignored): each call still builds a fresh isolated store, just on the
    selected backend — which is what the CI ``mem://`` matrix leg
    exercises across the runner-level tests using this fixture.
    """
    configured = os.environ.get("REPRO_STORE_URL", "")
    scheme = configured.split("://", 1)[0] if "://" in configured else "file"
    if scheme not in SCHEMES:
        raise ValueError(f"REPRO_STORE_URL has unsupported scheme {scheme!r}")
    created: list = []

    def make(name: str = "store") -> str:
        url = make_store_url(scheme, tmp_path, name)
        created.append(url)
        return url

    yield make
    _drop_mem_namespaces(created)
