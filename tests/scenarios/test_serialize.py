"""Round-trip serialization of grids, policy sets and results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policy import PolicySet, StatePolicy
from repro.core.time_iteration import (
    IterationRecord,
    TimeIterationConfig,
    TimeIterationResult,
)
from repro.grids.adaptive import AdaptiveRefiner
from repro.grids.domain import BoxDomain
from repro.grids.hierarchize import hierarchize
from repro.grids.regular import regular_sparse_grid
from repro.scenarios import serialize


def _kinked(X):
    return np.abs(X[:, 0] - 0.4) + 0.25 * X[:, 1]


class TestGridRoundTrip:
    def test_regular_grid(self, tmp_path):
        grid = regular_sparse_grid(3, 4)
        path = tmp_path / "grid.npz"
        serialize.save_grid(path, grid)
        loaded = serialize.load_grid(path)
        assert loaded.dim == grid.dim
        assert np.array_equal(loaded.levels, grid.levels)
        assert np.array_equal(loaded.indices, grid.indices)
        assert np.array_equal(loaded.points, grid.points)

    def test_adaptive_grid_row_order_preserved(self, tmp_path):
        refiner = AdaptiveRefiner(epsilon=1e-2, max_level=5, max_points=200)
        grid, _surplus = refiner.build(_kinked, dim=2, initial_level=2)
        assert grid.version > 0  # refinement actually happened
        path = tmp_path / "adaptive.npz"
        serialize.save_grid(path, grid)
        loaded = serialize.load_grid(path)
        assert np.array_equal(loaded.levels, grid.levels)
        assert np.array_equal(loaded.indices, grid.indices)

    def test_caches_dropped_on_load(self, tmp_path):
        grid = regular_sparse_grid(2, 3)
        grid.cached_derived("probe", lambda g: object())  # populate a derived cache
        path = tmp_path / "grid.npz"
        serialize.save_grid(path, grid)
        loaded = serialize.load_grid(path)
        assert loaded.version == 0
        assert loaded._derived_caches == {}
        assert loaded._points_cache is None

    def test_wrong_payload_rejected(self, tmp_path):
        grid = regular_sparse_grid(2, 2)
        path = tmp_path / "grid.npz"
        serialize.save_grid(path, grid)
        with pytest.raises(ValueError, match="policy-set"):
            serialize.load_policy_set(path)


def _make_policy_set(shared_grid: bool) -> tuple:
    dim = 2
    domain = BoxDomain(np.array([0.5, 0.0]), np.array([2.0, 1.5]))
    grid = regular_sparse_grid(dim, 3)
    policies = []
    for z in range(3):
        g = grid if shared_grid else grid.copy()
        X = domain.from_unit(g.points)
        values = np.stack([np.sin(z + X[:, 0]), X[:, 1] ** 2, X.sum(axis=1)], axis=1)
        policies.append(StatePolicy.from_values(z, g, values, domain, kernel="cuda"))
    return PolicySet(policies), domain


class TestPolicySetRoundTrip:
    @pytest.mark.parametrize("shared_grid", [True, False])
    def test_bit_exact_evaluation(self, tmp_path, shared_grid):
        pset, domain = _make_policy_set(shared_grid)
        path = tmp_path / "pset.npz"
        serialize.save_policy_set(path, pset)
        loaded = serialize.load_policy_set(path)
        rng = np.random.default_rng(0)
        X = domain.from_unit(rng.random((40, 2)))
        for z in range(len(pset)):
            assert np.array_equal(loaded.evaluate(z, X), pset.evaluate(z, X))
            assert np.array_equal(loaded[z].nodal_values, pset[z].nodal_values)
            assert np.array_equal(
                loaded[z].interpolant.surplus, pset[z].interpolant.surplus
            )
            assert loaded[z].kernel == pset[z].kernel

    def test_shared_grid_stays_shared(self, tmp_path):
        pset, _ = _make_policy_set(shared_grid=True)
        path = tmp_path / "pset.npz"
        serialize.save_policy_set(path, pset)
        loaded = serialize.load_policy_set(path)
        grids = {id(p.grid) for p in loaded}
        assert len(grids) == 1  # cache-sharing property preserved

    def test_distinct_grids_stay_distinct(self, tmp_path):
        pset, _ = _make_policy_set(shared_grid=False)
        path = tmp_path / "pset.npz"
        serialize.save_policy_set(path, pset)
        loaded = serialize.load_policy_set(path)
        grids = {id(p.grid) for p in loaded}
        assert len(grids) == len(pset)

    def test_scalar_surplus_shape_preserved(self, tmp_path):
        grid = regular_sparse_grid(2, 3)
        domain = BoxDomain.cube(2)
        surplus = hierarchize(grid, grid.points[:, 0] ** 2).reshape(-1)
        sp = StatePolicy.from_surplus(
            0, grid, surplus, grid.points[:, 0] ** 2, domain, kernel="x86"
        )
        pset = PolicySet([sp])
        path = tmp_path / "scalar.npz"
        serialize.save_policy_set(path, pset)
        loaded = serialize.load_policy_set(path)
        assert loaded[0].interpolant.surplus.ndim == 1
        X = np.random.default_rng(1).random((10, 2))
        assert np.array_equal(loaded.evaluate(0, X), pset.evaluate(0, X))


class TestResultRoundTrip:
    def test_records_config_and_policy(self, tmp_path, solved_small_olg):
        model, result = solved_small_olg
        path = tmp_path / "result.npz"
        serialize.save_result(path, result)
        loaded = serialize.load_result(path)
        assert loaded.converged == result.converged
        assert loaded.iterations == result.iterations
        assert serialize.config_to_dict(loaded.config) == serialize.config_to_dict(
            result.config
        )
        for mine, theirs in zip(loaded.records, result.records):
            assert serialize.record_to_dict(mine) == serialize.record_to_dict(theirs)
        assert np.array_equal(loaded.error_history(), result.error_history())
        X = model.domain.sample(25, rng=3)
        for z in range(model.num_states):
            assert np.array_equal(
                loaded.policy.evaluate(z, X), result.policy.evaluate(z, X)
            )

    def test_record_round_trip_with_diagnostics(self):
        record = IterationRecord(
            iteration=3,
            policy_change_linf=0.5,
            policy_change_l2=0.1,
            points_per_state=[7, 9],
            wall_time=1.25,
            policy_change_rel_linf=0.05,
            policy_change_rel_l2=0.01,
            sections={"solve": 1.0, "fit": 0.25},
            equilibrium_errors={"linf": 0.2, "l2": 0.1},
        )
        clone = serialize.record_from_dict(serialize.record_to_dict(record))
        assert serialize.record_to_dict(clone) == serialize.record_to_dict(record)

    def test_config_round_trip(self):
        config = TimeIterationConfig(
            grid_level=3, adaptive=True, refine_epsilon=5e-3, damping=0.7, kernel="avx2"
        )
        clone = serialize.config_from_dict(serialize.config_to_dict(config))
        assert clone == config

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        pset, _ = _make_policy_set(True)
        result = TimeIterationResult(
            policy=pset, records=[], converged=False, config=TimeIterationConfig()
        )
        path = tmp_path / "r.npz"
        serialize.save_result(path, result)
        serialize.save_result(path, result)  # overwrite path also atomic
        assert [p.name for p in tmp_path.iterdir()] == ["r.npz"]
