"""Solve-progress telemetry: event vocabulary, batching sink, tail, report.

The observability pillar end to end: the solver emits the
``solve-started``/``iteration``/``converged``/``solve-finished``
vocabulary through a thread-safe :class:`EventRecorder`, the
:class:`StoreEventSink` batches the high-frequency kinds into whole-object
puts, ``status --follow`` tails the persisted feed incrementally (byte
offsets, torn-line tolerance) across all three storage backends, and
``report`` joins entries + events into self-contained markdown/HTML.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.time_iteration import TimeIterationConfig, TimeIterationSolver
from repro.olg.calibration import small_calibration
from repro.olg.model import OLGModel
from repro.parallel.tracing import (
    EVENT_KINDS,
    LEASE_EVENT_KINDS,
    SOLVE_EVENT_KINDS,
    Event,
    EventRecorder,
)
from repro.scenarios import ResultsStore, ScenarioSpec, ScenarioSuite, run_suite
from repro.scenarios.__main__ import main as cli_main
from repro.scenarios.checkpoint import InterruptingCheckpoint, SimulatedKill, SolveCheckpoint
from repro.scenarios.lease import run_worker
from repro.scenarios.report import (
    EventTailer,
    ProgressBoard,
    estimate_eta,
    follow,
    format_progress_line,
    gather_run_data,
    render_html,
    render_markdown,
)
from repro.scenarios.store import StoreEventSink, parse_event_lines


def _tiny_solve_spec(name="tiny", **calibration):
    cal = {"num_generations": 4, "num_states": 1, "beta": 0.8}
    cal.update(calibration)
    return ScenarioSpec(
        name,
        calibration=cal,
        solver={"grid_level": 2, "tolerance": 1e-3, "max_iterations": 12},
    )


@pytest.fixture(scope="module")
def solve_problem():
    cal = small_calibration(num_generations=4, num_states=2, beta=0.8)
    model = OLGModel(cal)
    config = TimeIterationConfig(grid_level=2, tolerance=2e-3, max_iterations=20)
    return model, config


# --------------------------------------------------------------------------- #
# vocabulary + envelope
# --------------------------------------------------------------------------- #
class TestVocabulary:
    def test_solve_kinds_extend_the_lease_vocabulary(self):
        assert SOLVE_EVENT_KINDS == (
            "solve-started",
            "iteration",
            "refined",
            "converged",
            "solve-finished",
        )
        assert EVENT_KINDS == LEASE_EVENT_KINDS + SOLVE_EVENT_KINDS
        assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)

    def test_detail_keys_cannot_shadow_the_envelope(self):
        # regression: a detail key named like an envelope field used to
        # silently overwrite the envelope in the serialized dict
        event = Event(
            kind="claimed",
            worker="w1",
            scenario="abc",
            timestamp=10.0,
            detail={"kind": "evil", "timestamp": 99.0, "detail_kind": "nested"},
        )
        out = event.to_dict()
        assert out["kind"] == "claimed"
        assert out["timestamp"] == 10.0
        assert out["detail_timestamp"] == 99.0
        # the prefixed name was taken, so the colliding key escalates
        assert out["detail_kind"] == "nested"
        assert out["detail_detail_kind"] == "evil"

    def test_emit_is_thread_safe(self):
        recorder = EventRecorder()
        seen: list = []
        recorder.subscribe(seen.append)
        threads = [
            threading.Thread(
                target=lambda w=w: [
                    recorder.emit("iteration", f"w{w}", "s", iteration=i)
                    for i in range(50)
                ]
            )
            for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(recorder.events) == 400
        assert len(seen) == 400
        # no torn interleavings: every event reached the sink exactly once
        assert sorted(id(e) for e in seen) == sorted(id(e) for e in recorder.events)


# --------------------------------------------------------------------------- #
# solver emission
# --------------------------------------------------------------------------- #
class TestSolverEmission:
    def test_solve_emits_the_full_vocabulary(self, solve_problem):
        model, config = solve_problem
        recorder = EventRecorder()
        result = TimeIterationSolver(model, config).solve(
            events=recorder, worker="w0", scenario="abc123"
        )
        kinds = [e.kind for e in recorder.events]
        assert kinds[0] == "solve-started"
        assert kinds[-1] == "solve-finished"
        assert result.converged and "converged" in kinds
        iterations = recorder.by_kind("iteration")
        assert len(iterations) == result.iterations
        for n, event in enumerate(iterations, start=1):
            assert event.worker == "w0" and event.scenario == "abc123"
            assert event.detail["iteration"] == n
            assert event.detail["error_linf"] > 0.0
            assert event.detail["error_l2"] > 0.0
            assert event.detail["points"] > 0
            assert event.detail["wall_time"] >= 0.0
        started = recorder.by_kind("solve-started")[0].detail
        assert started["start_iteration"] == 0 and started["resumed"] is False
        finished = recorder.by_kind("solve-finished")[0].detail
        assert finished["iterations"] == result.iterations
        assert finished["new_iterations"] == result.iterations
        assert finished["converged"] is True

    def test_resumed_solve_reports_resume_point(self, tmp_path, solve_problem):
        model, config = solve_problem
        path = tmp_path / "resume.npz"
        killer = InterruptingCheckpoint(path, config=config, interrupt_after=2)
        with pytest.raises(SimulatedKill):
            TimeIterationSolver(model, config).solve(checkpoint=killer)
        recorder = EventRecorder()
        result = TimeIterationSolver(model, config).solve(
            checkpoint=SolveCheckpoint(path, config=config), events=recorder
        )
        started = recorder.by_kind("solve-started")[0].detail
        assert started["resumed"] is True and started["start_iteration"] == 2
        iterations = recorder.by_kind("iteration")
        assert iterations[0].detail["iteration"] == 3
        finished = recorder.by_kind("solve-finished")[0].detail
        assert finished["iterations"] == result.iterations
        assert finished["new_iterations"] == result.iterations - 2

    def test_already_converged_resume_emits_no_iterations(self, tmp_path, solve_problem):
        model, config = solve_problem
        path = tmp_path / "done.npz"
        TimeIterationSolver(model, config).solve(
            checkpoint=SolveCheckpoint(path, config=config)
        )
        recorder = EventRecorder()
        TimeIterationSolver(model, config).solve(
            checkpoint=SolveCheckpoint(path, config=config), events=recorder
        )
        kinds = [e.kind for e in recorder.events]
        assert kinds == ["solve-started", "solve-finished"]
        assert recorder.events[-1].detail["new_iterations"] == 0


# --------------------------------------------------------------------------- #
# store sink: batching + append
# --------------------------------------------------------------------------- #
class TestStoreEventSink:
    def _counting_store(self, url):
        store = ResultsStore(url)
        puts: list = []
        real_put = store.backend.put

        def counting_put(key, data):
            puts.append(key)
            return real_put(key, data)

        store.backend.put = counting_put
        return store, puts

    def test_iteration_events_are_batched(self, any_store_url):
        store, puts = self._counting_store(any_store_url)
        recorder = EventRecorder(clock=lambda: 0.0)
        sink = StoreEventSink(store, "w1", flush_every=25, flush_interval=1e9, clock=lambda: 0.0)
        recorder.subscribe(sink)
        for i in range(100):
            recorder.emit("iteration", "w1", "s", iteration=i)
        sink.flush()
        event_puts = [k for k in puts if k.startswith("events/")]
        # 100 buffered events at flush_every=25 -> exactly 4 puts, not 100
        assert len(event_puts) == 4
        assert len(store.events()) == 100

    def test_boundary_kinds_flush_immediately(self, store_url_for):
        store, puts = self._counting_store(store_url_for("file"))
        recorder = EventRecorder()
        sink = StoreEventSink(store, "w1", flush_every=1000, flush_interval=1e9)
        recorder.subscribe(sink)
        recorder.emit("iteration", "w1", "s", iteration=1)
        assert not [k for k in puts if k.startswith("events/")]  # buffered
        recorder.emit("claimed", "w1", "s")
        assert len([k for k in puts if k.startswith("events/")]) == 1
        assert [e["kind"] for e in store.events()] == ["iteration", "claimed"]

    def test_reopened_sink_appends_instead_of_clobbering(self, any_store_url):
        store = ResultsStore(any_store_url)
        recorder = EventRecorder()
        first = StoreEventSink(store, "w1")
        recorder.subscribe(first)
        recorder.emit("claimed", "w1", "s1")
        second = StoreEventSink(store, "w1")  # e.g. a restarted worker
        second(recorder.emit("committed", "w1", "s2"))
        second.flush()
        assert [e["kind"] for e in store.events()] == ["claimed", "committed"]

    def test_parse_event_lines_skips_torn_tail(self):
        whole = json.dumps({"kind": "claimed", "timestamp": 1.0}) + "\n"
        torn = (whole + '{"kind": "iterat').encode()
        assert [e["kind"] for e in parse_event_lines(torn)] == ["claimed"]
        assert parse_event_lines(b"no newline at all") == []
        assert parse_event_lines(b"garbage\n" + whole.encode()) == [
            {"kind": "claimed", "timestamp": 1.0}
        ]


# --------------------------------------------------------------------------- #
# live tail
# --------------------------------------------------------------------------- #
class TestEventTailer:
    def test_offsets_resume_across_polls(self, any_store_url):
        store = ResultsStore(any_store_url)
        key = "events/w1.jsonl"
        line1 = json.dumps({"kind": "claimed", "worker": "w1", "timestamp": 1.0})
        line2 = json.dumps({"kind": "iteration", "worker": "w1", "timestamp": 2.0})
        store.backend.put(key, (line1 + "\n").encode())
        tailer = EventTailer(store)
        assert [e["kind"] for e in tailer.poll()] == ["claimed"]
        assert tailer.poll() == []  # nothing new
        # grow the object with one complete and one torn line
        store.backend.put(key, (line1 + "\n" + line2 + "\n" + '{"kind": "to').encode())
        assert [e["kind"] for e in tailer.poll()] == ["iteration"]
        # the torn line completes -> surfaced on the next poll, exactly once
        line3 = json.dumps({"kind": "torn-no-more", "timestamp": 3.0})
        store.backend.put(key, (line1 + "\n" + line2 + "\n" + line3 + "\n").encode())
        assert [e["kind"] for e in tailer.poll()] == ["torn-no-more"]
        assert tailer.poll() == []

    def test_merged_feed_is_time_ordered_across_workers(self, store_url_for):
        store = ResultsStore(store_url_for("mem"))
        for worker, stamps in (("wa", (1.0, 4.0)), ("wb", (2.0, 3.0))):
            lines = "".join(
                json.dumps({"kind": "heartbeat", "worker": worker, "timestamp": t}) + "\n"
                for t in stamps
            )
            store.backend.put(f"events/{worker}.jsonl", lines.encode())
        stamps = [e["timestamp"] for e in EventTailer(store).poll()]
        assert stamps == sorted(stamps) == [1.0, 2.0, 3.0, 4.0]

    def test_follow_surfaces_new_event_within_one_poll(self, any_store_url):
        store = ResultsStore(any_store_url)
        recorder = EventRecorder()
        sink = StoreEventSink(store, "w1")
        recorder.subscribe(sink)
        recorder.emit("claimed", "w1", "s1")

        lines: list = []

        def sleep_then_emit(_seconds):
            # a solver makes progress between the two poll cycles
            recorder.emit(
                "iteration", "w1", "s1",
                iteration=1, error=0.5, error_linf=0.5, points=3, wall_time=0.1,
            )
            sink.flush()

        streamed = follow(
            store, poll=0.01, out=lines.append, sleep=sleep_then_emit, max_polls=2
        )
        text = "\n".join(lines)
        assert streamed == 2
        assert "claimed" in text
        assert "iter=1" in text and "err=5.000e-01" in text


# --------------------------------------------------------------------------- #
# progress + ETA
# --------------------------------------------------------------------------- #
class TestProgressAndEta:
    def _geometric_progress(self, factor=0.5, n=8, tolerance=1e-6):
        errors = [1.0 * factor**i for i in range(1, n + 1)]
        return {
            "status": "running",
            "iteration": n,
            "error": errors[-1],
            "tolerance": tolerance,
            "max_iterations": 100,
            "samples": [(i + 1, e, 0.1) for i, e in enumerate(errors)],
        }

    def test_eta_from_contraction_rate(self):
        import math

        progress = self._geometric_progress(factor=0.5, n=8, tolerance=1e-6)
        eta = estimate_eta(progress)
        expected = math.log(progress["tolerance"] / progress["error"]) / math.log(0.5)
        assert eta is not None
        assert abs(eta["iterations_left"] - expected) <= 1.0
        assert eta["seconds_left"] == pytest.approx(0.1 * eta["iterations_left"], rel=0.2)
        assert eta["rate"] < 0.0

    def test_eta_none_when_not_contracting(self):
        flat = {
            "status": "running",
            "iteration": 5,
            "error": 0.5,
            "tolerance": 1e-6,
            "samples": [(i, 0.5, 0.1) for i in range(1, 6)],
        }
        assert estimate_eta(flat) is None
        assert estimate_eta({"samples": [], "tolerance": 1e-6, "error": 0.5}) is None

    def test_eta_zero_once_below_tolerance(self):
        progress = self._geometric_progress(tolerance=1.0)
        eta = estimate_eta(progress)
        assert eta == {"iterations_left": 0, "seconds_left": 0.0, "rate": None}

    def test_eta_clamped_for_non_contracting_series(self):
        # satellite regression: a stalled series fits a float-noise slope
        # of ~-1e-16, which used to extrapolate a 10^15-iteration "ETA";
        # a growing (diverging-member) series used to yield negative ones.
        # Both must clamp to n/a (None), with or without a budget.
        stalled = {
            "status": "running",
            "iteration": 6,
            "error": 1e-2,
            "tolerance": 1e-4,
            "samples": [(i, 1e-2, 0.1) for i in range(1, 7)],
        }
        assert estimate_eta(stalled) is None
        growing = dict(
            stalled,
            error=1e-3 * 2.0**6,
            samples=[(i, 1e-3 * 2.0**i, 0.1) for i in range(1, 7)],
        )
        assert estimate_eta(growing) is None
        assert estimate_eta(dict(growing, max_iterations=100)) is None

    def test_eta_none_for_non_finite_inputs(self):
        # NaN slips through every <=-style guard and inf survives the
        # positivity check — both used to reach math.log/math.ceil and
        # crash or poison the fit
        nan = float("nan")
        inf = float("inf")
        base = {
            "status": "running",
            "iteration": 3,
            "tolerance": 1e-4,
            "samples": [(1, 1e-1, 0.1), (2, 1e-2, 0.1), (3, nan, 0.1)],
            "error": nan,
        }
        assert estimate_eta(base) is None
        assert estimate_eta(dict(base, error=inf)) is None
        assert estimate_eta(dict(base, error=1e-2, tolerance=-1.0)) is None
        assert estimate_eta(dict(base, error=1e-2, tolerance=nan)) is None
        # non-finite samples are filtered, not fatal: the finite prefix
        # still contracts, so a real ETA comes back
        healthy_tail = dict(
            base,
            error=1e-3,
            samples=[(1, 1e-1, 0.1), (2, 1e-2, 0.1), (3, 1e-3, 0.1), (4, inf, 0.1)],
        )
        eta = estimate_eta(healthy_tail)
        assert eta is not None and eta["iterations_left"] > 0
        # and the progress-line renderer survives an ETA-less record
        line = format_progress_line(dict(base, scenario="s" * 16, points=10))
        assert "eta" not in line or "n/a" in line

    def test_board_tracks_scenario_lifecycle(self):
        board = ProgressBoard()
        for event in [
            {"kind": "claimed", "worker": "w1", "scenario": "abc", "timestamp": 1.0},
            {
                "kind": "solve-started", "worker": "w1", "scenario": "abc",
                "timestamp": 2.0, "start_iteration": 0, "tolerance": 1e-3,
                "max_iterations": 12,
            },
            {
                "kind": "iteration", "worker": "w1", "scenario": "abc",
                "timestamp": 3.0, "iteration": 1, "error": 0.25,
                "error_linf": 0.25, "points": 7, "wall_time": 0.1,
            },
            {"kind": "committed", "worker": "w1", "scenario": "abc", "timestamp": 4.0},
        ]:
            board.update(event)
        snap = board.snapshot()["abc"]
        assert snap["status"] == "completed"
        assert snap["iteration"] == 1 and snap["error"] == 0.25
        assert snap["tolerance"] == 1e-3 and snap["points"] == 7


# --------------------------------------------------------------------------- #
# fleet integration + reports
# --------------------------------------------------------------------------- #
class TestFleetAndReport:
    def test_worker_persists_solve_progress_events(self, env_store_url):
        store = ResultsStore(env_store_url())
        suite = ScenarioSuite("tiny", [_tiny_solve_spec("tiny-lo", tau_labor=0.1)])
        report = run_worker(suite, store, worker_id="wA", progress=lambda *_: None)
        assert len(report.completed) == 1
        kinds = {e["kind"] for e in store.events()}
        assert {"claimed", "solve-started", "iteration", "converged",
                "solve-finished", "committed", "released"} <= kinds
        scenario = store.scenario_key(suite[0])
        iterations = [e for e in store.events() if e["kind"] == "iteration"]
        assert iterations and all(e["scenario"] == scenario for e in iterations)

    def _mixed_store(self, url):
        """Completed + failed + parked + in-flight, like a real drain."""
        store = ResultsStore(url)
        suite = ScenarioSuite(
            "tiny",
            [_tiny_solve_spec("tiny-lo", tau_labor=0.1),
             _tiny_solve_spec("tiny-hi", tau_labor=0.2)],
        )
        run_suite(suite, store, progress=lambda *_: None)
        failed_spec = _tiny_solve_spec("tiny-bad", tau_labor=0.3)
        store.commit_entry(
            store.failure_entry(
                failed_spec, "failed", 0.5, "solver diverged",
                tb="Traceback (most recent call last):\n  boom\n",
            )
        )
        parked_spec = _tiny_solve_spec("tiny-parked", tau_labor=0.4)
        store.backend.put(
            store.parked_key(parked_spec),
            json.dumps({"attempts": 3, "error": "always diverges"}).encode(),
        )
        # an in-flight scenario: claimed + progressing, no terminal event yet
        recorder = EventRecorder()
        sink = StoreEventSink(store, "w-inflight")
        recorder.subscribe(sink)
        inflight = store.scenario_key(_tiny_solve_spec("tiny-live", tau_labor=0.5))
        recorder.emit("claimed", "w-inflight", inflight)
        recorder.emit(
            "solve-started", "w-inflight", inflight,
            start_iteration=0, resumed=False, tolerance=1e-3, max_iterations=12,
        )
        for i in (1, 2, 3):
            recorder.emit(
                "iteration", "w-inflight", inflight,
                iteration=i, error=0.5**i, error_linf=0.5**i, points=7,
                wall_time=0.05,
            )
        sink.flush()
        return store, inflight

    def test_gather_joins_entries_events_and_parked(self, any_store_url):
        store, inflight = self._mixed_store(any_store_url)
        data = gather_run_data(store)
        assert data["status_counts"] == {"completed": 2, "failed": 1}
        assert len(data["parked"]) == 1
        assert data["progress"][inflight]["status"] == "running"
        assert data["progress"][inflight]["eta"] is not None
        assert data["event_counts"]["iteration"] >= 3
        assert "w-inflight" in data["workers"]
        assert any(s["open"] for s in data["spans"])  # the live claim
        assert len(data["convergence"]) == 3  # 2 from entries + 1 from events

    def test_markdown_report_covers_every_section(self, store_url_for):
        store, inflight = self._mixed_store(store_url_for("file"))
        md = render_markdown(gather_run_data(store))
        for heading in (
            "# Scenario run report", "## Suite summary", "## Scenarios",
            "## Solve progress", "## Convergence", "## Slowest scenarios",
            "## Fleet timeline", "## Events by kind", "## Parked scenarios",
            "## Failures",
        ):
            assert heading in md
        assert "solver diverged" in md and "always diverges" in md
        assert inflight in md
        assert any(ch in md for ch in "▁▂▃▄▅▆▇█")  # sparkline trajectories

    def test_html_report_is_self_contained(self, any_store_url):
        store, inflight = self._mixed_store(any_store_url)
        html = render_html(gather_run_data(store))
        assert html.startswith("<!DOCTYPE html>")
        assert html.count("<svg") >= 4  # 3 convergence curves + timeline
        assert "polyline" in html and "Fleet timeline" in html
        assert "status-failed" in html and "<pre>Traceback" in html
        # self-contained: no scripts, no external fetches of any kind
        assert "<script" not in html and "href=" not in html and "src=" not in html
        assert "http" not in html.replace("http://www.w3.org/2000/svg", "")


class TestCLI:
    def test_status_json_reports_progress_and_event_counts(self, tmp_path, capsys):
        store_url = f"file://{(tmp_path / 'store').as_posix()}"
        store = ResultsStore(store_url)
        suite = ScenarioSuite("tiny", [_tiny_solve_spec("tiny-lo", tau_labor=0.1)])
        run_worker(suite, store, worker_id="wA", progress=lambda *_: None)
        capsys.readouterr()
        assert cli_main(["status", "--store", store_url, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"]["iteration"] >= 1
        assert payload["events_total"] > 0
        progress = payload["progress"][store.scenario_key(suite[0])]
        assert progress["status"] == "completed"
        assert progress["iteration"] >= 1 and progress["error"] is not None

    def test_status_follow_streams_one_bounded_cycle(self, tmp_path, capsys):
        store_url = f"file://{(tmp_path / 'store').as_posix()}"
        store = ResultsStore(store_url)
        recorder = EventRecorder()
        sink = StoreEventSink(store, "w1")
        recorder.subscribe(sink)
        recorder.emit("claimed", "w1", "abc")
        assert (
            cli_main(
                ["status", "--store", store_url, "--follow",
                 "--poll", "0.01", "--max-polls", "1"]
            )
            == 0
        )
        assert "claimed" in capsys.readouterr().out

    def test_report_cli_writes_html_file(self, tmp_path, capsys):
        store_url = f"file://{(tmp_path / 'store').as_posix()}"
        suite = ScenarioSuite("tiny", [_tiny_solve_spec("tiny-lo", tau_labor=0.1)])
        run_suite(suite, ResultsStore(store_url), progress=lambda *_: None)
        out = tmp_path / "report.html"
        assert (
            cli_main(["report", "--store", store_url, "--format", "html",
                      "-o", str(out)])
            == 0
        )
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>") and "<svg" in html

    def test_report_cli_markdown_to_stdout(self, tmp_path, capsys):
        store_url = f"file://{(tmp_path / 'store').as_posix()}"
        suite = ScenarioSuite("tiny", [_tiny_solve_spec("tiny-lo", tau_labor=0.1)])
        run_suite(suite, ResultsStore(store_url), progress=lambda *_: None)
        capsys.readouterr()
        assert cli_main(["report", "--store", store_url]) == 0
        assert "# Scenario run report" in capsys.readouterr().out
