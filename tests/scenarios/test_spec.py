"""Scenario spec validation, hashing and sweep builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios.spec import (
    EXPERIMENT_KINDS,
    ScenarioSpec,
    ScenarioSuite,
    get_preset,
    preset_names,
)


class TestScenarioSpec:
    def test_hash_is_order_independent(self):
        a = ScenarioSpec("a", calibration={"beta": 0.8, "num_states": 2})
        b = ScenarioSpec("b", calibration={"num_states": 2, "beta": 0.8})
        assert a.content_hash() == b.content_hash()

    def test_hash_ignores_name_and_tags(self):
        a = ScenarioSpec("a", solver={"grid_level": 3}, tags=("x",))
        b = ScenarioSpec("renamed", solver={"grid_level": 3}, tags=("y", "z"))
        assert a.content_hash() == b.content_hash()

    def test_hash_changes_with_content(self):
        a = ScenarioSpec("a", solver={"grid_level": 2})
        b = ScenarioSpec("a", solver={"grid_level": 3})
        c = ScenarioSpec("a", kind="table1", params={"dim": 5})
        assert len({a.content_hash(), b.content_hash(), c.content_hash()}) == 3

    def test_hash_stable_across_sessions(self):
        # a frozen anchor: accidental hash-scheme changes would orphan stores
        spec = ScenarioSpec("anchor", calibration={"beta": 0.8}, solver={"grid_level": 2})
        assert spec.content_hash() == (
            "ef973a6f05c35810d2f21b9264ef1d43026f0f793564a164c533b68e3d415b89"
        )

    def test_numpy_values_are_normalised(self):
        a = ScenarioSpec("a", calibration={"beta": np.float64(0.8), "num_states": np.int32(2)})
        b = ScenarioSpec("a", calibration={"beta": 0.8, "num_states": 2})
        assert a.content_hash() == b.content_hash()
        assert isinstance(a.calibration["num_states"], int)

    def test_unknown_calibration_key_rejected(self):
        with pytest.raises(ValueError, match="calibration override"):
            ScenarioSpec("a", calibration={"no_such_param": 1})

    def test_unknown_solver_key_rejected(self):
        with pytest.raises(ValueError, match="solver override"):
            ScenarioSpec("a", solver={"no_such_field": 1})

    def test_solve_kind_rejects_params(self):
        with pytest.raises(ValueError, match="params"):
            ScenarioSpec("a", params={"dim": 3})

    def test_experiment_kind_rejects_calibration(self):
        with pytest.raises(ValueError, match="params"):
            ScenarioSpec("a", kind="table1", calibration={"beta": 0.9})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ScenarioSpec("a", kind="mystery")

    def test_round_trip_dict(self):
        spec = ScenarioSpec(
            "rt",
            calibration={"beta": 0.85},
            solver={"grid_level": 3, "adaptive": True},
            tags=("t1", "t2"),
        )
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.content_hash() == spec.content_hash()

    def test_build_objects(self):
        spec = ScenarioSpec(
            "b",
            calibration={"num_generations": 4, "num_states": 2},
            solver={"grid_level": 2, "tolerance": 1e-3},
        )
        model = spec.build_model()
        config = spec.build_config()
        assert model.num_states == 2
        assert model.state_dim == 3
        assert config.grid_level == 2 and config.tolerance == 1e-3

    def test_with_overrides_merges(self):
        base = ScenarioSpec("base", calibration={"beta": 0.8, "tau_labor": 0.1})
        derived = base.with_overrides(name="d", calibration={"tau_labor": 0.3})
        assert derived.calibration == {"beta": 0.8, "tau_labor": 0.3}
        assert base.calibration["tau_labor"] == 0.1  # base untouched


class TestScenarioSuite:
    def test_cartesian_product(self):
        base = ScenarioSpec("s", calibration={"beta": 0.8})
        suite = ScenarioSuite.cartesian(
            "sweep",
            base,
            {"calibration.tau_labor": [0.1, 0.2], "solver.grid_level": [2, 3]},
        )
        assert len(suite) == 4
        assert len(set(suite.hashes())) == 4
        assert len({s.name for s in suite}) == 4
        # every combination present
        combos = {(s.calibration["tau_labor"], s.solver["grid_level"]) for s in suite}
        assert combos == {(0.1, 2), (0.1, 3), (0.2, 2), (0.2, 3)}

    def test_cartesian_rejects_bad_axis(self):
        base = ScenarioSpec("s")
        with pytest.raises(ValueError, match="axis"):
            ScenarioSuite.cartesian("x", base, {"grid_level": [2]})
        with pytest.raises(ValueError, match="no values"):
            ScenarioSuite.cartesian("x", base, {"solver.grid_level": []})

    def test_empty_axes_keeps_tags(self):
        base = ScenarioSpec("s", tags=("base",))
        suite = ScenarioSuite.cartesian("one", base, {}, tags=("extra",))
        assert len(suite) == 1
        assert suite[0].tags == ("base", "extra")

    def test_duplicate_names_rejected(self):
        spec = ScenarioSpec("dup")
        with pytest.raises(ValueError, match="unique"):
            ScenarioSuite("s", [spec, spec])

    def test_describe_lists_every_scenario(self):
        suite = ScenarioSuite.cartesian(
            "d", ScenarioSpec("s"), {"calibration.beta": [0.8, 0.9]}
        )
        text = suite.describe()
        for s in suite:
            assert s.name in text
            assert s.short_hash in text


class TestPresets:
    def test_preset_names_cover_experiments_and_solves(self):
        names = preset_names()
        assert {"smoke", "tax-reform", "demographics", "shock-process"} <= set(names)
        assert {"table1", "table2"} <= set(names)

    @pytest.mark.parametrize("name", ["smoke", "tax-reform", "demographics", "shock-process"])
    def test_solve_presets_expand_and_validate(self, name):
        suite = get_preset(name)
        assert len(suite) >= 2
        assert all(s.kind == "solve" for s in suite)
        assert len(set(suite.hashes())) == len(suite)
        for s in suite:
            s.build_config()  # must instantiate cleanly

    @pytest.mark.parametrize("name,kind", [("table1", "table1"), ("table2", "table2")])
    def test_experiment_presets(self, name, kind):
        suite = get_preset(name)
        assert all(s.kind == kind for s in suite)
        assert kind in EXPERIMENT_KINDS

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown preset"):
            get_preset("nope")
