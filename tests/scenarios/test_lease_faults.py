"""Fault-injection tests of the claim/lease worker-fleet protocol.

Deterministic crash, drop and clock-skew scenarios driven through
:class:`~repro.scenarios.backends.FaultInjectingBackend` and injectable
clocks — no real kill -9, no sleeps longer than a heartbeat interval.
The acceptance test (kill a lease-holding worker mid-solve, peer steals
after TTL and resumes the dead worker's checkpoint bit-exactly) runs
over all three backends via ``any_store_url``.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.parallel.tracing import LEASE_EVENT_KINDS, EventRecorder
from repro.scenarios import (
    ResultsStore,
    ScenarioSpec,
    ScenarioSuite,
    run_suite,
    run_worker,
)
from repro.scenarios.__main__ import main as cli_main
from repro.scenarios.backends import (
    FaultInjectingBackend,
    InjectedCrash,
    TransientStorageError,
    backend_from_url,
    call_with_retries,
    is_transient,
)
from repro.scenarios.backends.retry import RETRIES_ENV, RETRY_BASE_ENV
from repro.scenarios.checkpoint import SolveAbandoned, SolveCheckpoint
from repro.scenarios.lease import (
    LeaseHeartbeat,
    LeaseLost,
    LeaseManager,
    store_event_sink,
)


def _tiny_solve_spec(name="tiny", **calibration) -> ScenarioSpec:
    cal = {"num_generations": 4, "num_states": 1, "beta": 0.8}
    cal.update(calibration)
    return ScenarioSpec(
        name,
        calibration=cal,
        solver={"grid_level": 2, "tolerance": 1e-3, "max_iterations": 12},
    )


def _payload_spec(i: int, name: str | None = None) -> ScenarioSpec:
    return ScenarioSpec(
        name or f"lease-{i}",
        kind="ablations",
        params={"which": "partition", "total_processes": 2 ** (1 + i)},
    )


def _broken_spec(name="broken") -> ScenarioSpec:
    """A spec whose adapter deterministically raises (unknown ablation)."""
    return ScenarioSpec(name, kind="ablations", params={"which": "no-such-ablation"})


class _Clock:
    """Settable fake clock: ``clock()`` returns ``now`` until advanced."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += float(dt)


def _manager(store, worker, clock, ttl=10.0, events=None) -> LeaseManager:
    return LeaseManager(
        store, worker, ttl=ttl, clock=clock, events=events, retries=0, retry_base=0.0
    )


# --------------------------------------------------------------------------- #
# claim / renew / release / steal mechanics
# --------------------------------------------------------------------------- #
class TestClaimProtocol:
    def test_claim_renew_release_roundtrip(self, any_store_url):
        store = ResultsStore.open(any_store_url)
        clock = _Clock()
        events = EventRecorder(clock=clock)
        m = _manager(store, "w1", clock, events=events)
        spec = _payload_spec(0)
        lease = m.try_claim(spec)
        assert lease is not None and lease.epoch == 1
        assert lease.worker == "w1"
        # the lease is a real object on the backend, under leases/<hash16>/
        assert store.backend.exists(store.lease_key(spec))
        clock.advance(3.0)
        renewed = m.renew(lease)
        assert renewed.renewed_at == clock.now
        assert m.release(renewed) is True
        assert store.leases() == []
        assert [e.kind for e in events.events] == ["claimed", "heartbeat", "released"]
        assert all(e.kind in LEASE_EVENT_KINDS for e in events.events)

    def test_healthy_lease_is_not_claimable(self, store_url_for):
        store = ResultsStore.open(store_url_for("mem"))
        clock = _Clock()
        spec = _payload_spec(0)
        assert _manager(store, "w1", clock).try_claim(spec) is not None
        # a peer sharing the same clock sees a fresh renewal: no steal
        assert _manager(store, "w2", clock).try_claim(spec) is None

    def test_expired_lease_is_stolen_with_epoch_bump(self, any_store_url):
        store = ResultsStore.open(any_store_url)
        clock = _Clock()
        events = EventRecorder(clock=clock)
        spec = _payload_spec(0)
        m1 = _manager(store, "w1", clock, ttl=5.0)
        lease1 = m1.try_claim(spec)
        assert lease1 is not None
        clock.advance(5.1)  # past the TTL: w1 looks dead to everyone
        m2 = _manager(store, "w2", clock, ttl=5.0, events=events)
        lease2 = m2.try_claim(spec)
        assert lease2 is not None and lease2.worker == "w2"
        assert lease2.epoch == lease1.epoch + 1
        assert events.by_kind("stolen")
        # the superseded holder's renewal now fails: split-brain impossible
        with pytest.raises(LeaseLost):
            m1.renew(lease1)

    def test_lost_put_race_detected_by_read_back(self, store_url_for):
        # drop the claim put: the read-back sees no lease (as if a peer's
        # racing put had overwritten ours) and try_claim reports defeat
        backend = FaultInjectingBackend(backend_from_url(store_url_for("mem")))
        store = ResultsStore(backend)
        rule = backend.add_rule(op="put", substring="lease.json", action="drop", times=1)
        clock = _Clock()
        assert _manager(store, "w1", clock).try_claim(_payload_spec(0)) is None
        assert rule.fired == 1
        # next claim goes through untouched
        assert _manager(store, "w1", clock).try_claim(_payload_spec(0)) is not None

    def test_release_of_stolen_lease_is_a_noop(self, store_url_for):
        store = ResultsStore.open(store_url_for("mem"))
        clock = _Clock()
        spec = _payload_spec(0)
        m1 = _manager(store, "w1", clock, ttl=2.0)
        lease1 = m1.try_claim(spec)
        clock.advance(2.1)
        m2 = _manager(store, "w2", clock, ttl=2.0)
        lease2 = m2.try_claim(spec)
        assert lease2 is not None
        # w1 releasing must not delete w2's lease
        assert m1.release(lease1) is False
        assert store.backend.exists(store.lease_key(spec))

    def test_torn_lease_object_is_claimable(self, store_url_for):
        store = ResultsStore.open(store_url_for("mem"))
        spec = _payload_spec(0)
        store.backend.put(store.lease_key(spec), b"{not json")
        assert _manager(store, "w1", _Clock()).try_claim(spec) is not None


# --------------------------------------------------------------------------- #
# clock skew (satellite: skewed workers)
# --------------------------------------------------------------------------- #
class TestClockSkew:
    def test_slow_clocked_peer_never_steals_healthy_lease(self, store_url_for):
        store = ResultsStore.open(store_url_for("mem"))
        owner_clock, slow_clock = _Clock(1000.0), _Clock(900.0)  # peer 100s behind
        spec = _payload_spec(0)
        owner = _manager(store, "owner", owner_clock, ttl=5.0)
        lease = owner.try_claim(spec)
        assert lease is not None
        # however long the slow peer waits short of skew+ttl, the lease's
        # renewed_at stays in the peer's future: age is negative, no steal
        peer = _manager(store, "slow-peer", slow_clock, ttl=5.0)
        for _ in range(3):
            slow_clock.advance(30.0)
            assert peer.try_claim(spec) is None
        # and renewals keep pushing the steal horizon out
        owner_clock.advance(90.0)
        owner.renew(lease)
        slow_clock.advance(14.0)  # peer now at 1004 < renewed_at 1090
        assert peer.try_claim(spec) is None

    def test_fast_clocked_owner_lease_still_expires_for_peers(self, store_url_for):
        store = ResultsStore.open(store_url_for("mem"))
        fast_clock, peer_clock = _Clock(1100.0), _Clock(1000.0)  # owner 100s ahead
        spec = _payload_spec(0)
        owner = _manager(store, "fast-owner", fast_clock, ttl=5.0)
        assert owner.try_claim(spec) is not None
        # owner dies at t=1000 (peer frame); lease stamped renewed_at=1100.
        # It is unstealable for skew+ttl, not forever:
        peer = _manager(store, "peer", peer_clock, ttl=5.0)
        peer_clock.advance(100.0)  # reaches the owner's stamp
        assert peer.try_claim(spec) is None  # age 0 < ttl
        peer_clock.advance(5.1)  # skew + ttl elapsed
        stolen = peer.try_claim(spec)
        assert stolen is not None and stolen.epoch == 2


# --------------------------------------------------------------------------- #
# heartbeat
# --------------------------------------------------------------------------- #
class TestHeartbeat:
    def test_heartbeat_renews_until_stopped(self, store_url_for):
        store = ResultsStore.open(store_url_for("mem"))
        m = _manager(store, "w1", _Clock(), ttl=10.0)
        lease = m.try_claim(_payload_spec(0))
        hb = LeaseHeartbeat(m, lease, interval=0.02).start()
        deadline = threading.Event()
        deadline.wait(0.2)
        hb.stop()
        assert not hb.abort_requested()
        assert hb.lease.renewed_at >= lease.renewed_at
        # stop() never releases: that is the owner's explicit decision
        assert store.backend.exists(store.lease_key(_payload_spec(0)))

    def test_stolen_lease_flips_abort_and_emits_heartbeat_missed(self, store_url_for):
        store = ResultsStore.open(store_url_for("mem"))
        clock = _Clock()
        events = EventRecorder(clock=clock)
        m1 = _manager(store, "w1", clock, ttl=5.0, events=events)
        spec = _payload_spec(0)
        lease = m1.try_claim(spec)
        clock.advance(5.1)
        assert _manager(store, "thief", clock, ttl=5.0).try_claim(spec) is not None
        hb = LeaseHeartbeat(m1, lease, interval=0.01).start()
        for _ in range(200):
            if hb.abort_requested():
                break
            threading.Event().wait(0.01)
        hb.stop()
        assert hb.abort_requested()
        assert events.by_kind("heartbeat-missed")

    def test_abort_hook_abandons_before_writing(self, tmp_path):
        # the checkpoint polls abort() before every write: a worker whose
        # lease is gone must not clobber the thief's newer checkpoint
        ckpt = SolveCheckpoint(tmp_path / "x.npz", abort=lambda: True)
        with pytest.raises(SolveAbandoned):
            ckpt.on_iteration(None, [1], False, None)
        assert not (tmp_path / "x.npz").exists()


# --------------------------------------------------------------------------- #
# the acceptance test: kill -> steal -> resume, bit-exact
# --------------------------------------------------------------------------- #
class TestKillStealResume:
    def test_killed_worker_is_stolen_and_resumed_bit_exactly(
        self, any_store_url, store_url_for
    ):
        spec = _tiny_solve_spec("kill-steal", tau_labor=0.17)
        suite = ScenarioSuite("one", [spec])

        # worker A dies (uncatchable InjectedCrash, the in-process stand-in
        # for kill -9) right after persisting its second checkpoint: lease
        # and checkpoint stay behind, nothing was committed or released
        crashing = FaultInjectingBackend(backend_from_url(any_store_url))
        crashing.add_rule(
            op="put", substring="checkpoint", action="crash", after=1, times=1
        )
        store_a = ResultsStore(crashing)
        clock_a = _Clock(1000.0)
        with pytest.raises(InjectedCrash):
            run_worker(
                suite,
                store_a,
                worker_id="victim",
                ttl=30.0,
                heartbeat_interval=1000.0,  # no renewals interfere mid-test
                clock=clock_a,
                backoff_base=0.0,
            )
        store = ResultsStore.open(any_store_url)
        assert store.entry(spec) is None  # nothing committed
        assert store.checkpoint_ref(spec).exists()
        [left_behind] = store.leases()
        assert left_behind["worker"] == "victim"

        # worker B's clock is past the victim's TTL: it steals (epoch 2)
        # and resumes from the dead worker's checkpoint
        clock_b = _Clock(1000.0 + 30.0 + 1.0)
        report = run_worker(
            suite,
            store,
            worker_id="thief",
            ttl=30.0,
            heartbeat_interval=1000.0,
            clock=clock_b,
            backoff_base=0.0,
        )
        assert report.completed and report.steals == 1
        entry = store.entry(spec)
        assert entry["status"] == "completed" and entry["resumed"] is True
        assert store.leases() == []  # released after commit

        # bit-exactness: the stolen-and-resumed solve equals an
        # uninterrupted solve of the same spec in a pristine store
        fresh = ResultsStore.open(store_url_for("mem", name="uninterrupted"))
        assert run_suite(suite, fresh).ok
        a, b = store.load_result(spec), fresh.load_result(spec)
        assert a.iterations == b.iterations
        assert np.array_equal(a.error_history(), b.error_history())

    def test_crash_between_commit_and_release_is_healed(self, any_store_url):
        # the crash-safe release ordering: entry committed first, lease
        # deleted second.  Crash in between and the suite still converges
        # to zero lease objects via the expiry + heal path.
        spec = _payload_spec(0, name="heal-me")
        suite = ScenarioSuite("one", [spec])
        crashing = FaultInjectingBackend(backend_from_url(any_store_url))
        crashing.add_rule(
            op="delete", substring="lease.json", action="crash", times=1
        )
        clock_a = _Clock(1000.0)
        with pytest.raises(InjectedCrash):
            run_worker(
                ScenarioSuite("one", [spec]),
                ResultsStore(crashing),
                worker_id="victim",
                ttl=10.0,
                heartbeat_interval=1000.0,
                clock=clock_a,
                backoff_base=0.0,
            )
        store = ResultsStore.open(any_store_url)
        assert store.entry_is_complete(store.entry(spec))  # commit landed
        assert len(store.leases()) == 1  # ...but the lease survived

        clock_b = _Clock(1000.0 + 10.0 + 1.0)
        report = run_worker(
            suite,
            store,
            worker_id="healer",
            ttl=10.0,
            heartbeat_interval=1000.0,
            clock=clock_b,
            backoff_base=0.0,
        )
        assert report.healed == 1 and report.already_done == [
            store.scenario_key(spec)
        ]
        assert report.claims == 0  # nothing was re-solved
        assert store.leases() == []


# --------------------------------------------------------------------------- #
# retry budget, parking, failed-entry tracebacks
# --------------------------------------------------------------------------- #
class TestFailureHandling:
    def test_permanently_failing_scenario_is_parked(self, store_url_for):
        store = ResultsStore.open(store_url_for("mem"))
        suite = ScenarioSuite("one", [_broken_spec()])
        clock = _Clock()
        report = run_worker(
            suite,
            store,
            worker_id="w1",
            max_attempts=2,
            clock=clock,
            backoff_base=0.0,
            heartbeat_interval=1000.0,
        )
        assert report.parked == [store.scenario_key(_broken_spec())]
        assert report.claims == 2  # exactly the attempt budget
        [parked] = store.parked()
        assert parked["attempts"] == 2
        assert "no-such-ablation" in parked["error"]
        assert store.leases() == []  # released between attempts and at parking
        kinds = [e.kind for e in report.events.events]
        assert "retry" in kinds and "parked" in kinds
        # a second worker skips the parked scenario outright
        second = run_worker(
            suite, store, worker_id="w2", clock=clock, backoff_base=0.0
        )
        assert second.claims == 0 and second.parked

    def test_retry_parked_clears_the_budget(self, store_url_for):
        store = ResultsStore.open(store_url_for("mem"))
        broken = ScenarioSuite("one", [_broken_spec()])
        clock = _Clock()
        run_worker(
            broken, store, worker_id="w1", max_attempts=1, clock=clock, backoff_base=0.0
        )
        assert store.parked()
        report = run_worker(
            broken,
            store,
            worker_id="w2",
            max_attempts=1,
            clock=clock,
            backoff_base=0.0,
            retry_parked=True,
        )
        assert report.claims == 1  # re-attempted after unparking
        assert store.parked()  # ...and parked again (still broken)

    def test_failed_entry_records_traceback_and_show_prints_it(
        self, store_url_for, capsys
    ):
        url = store_url_for("file")
        store = ResultsStore.open(url)
        report = run_suite(ScenarioSuite("one", [_broken_spec()]), store)
        assert report.count("failed") == 1
        entry = store.entry(_broken_spec())
        assert "Traceback (most recent call last)" in entry["traceback"]
        assert "no-such-ablation" in entry["traceback"]
        assert cli_main(["show", "--store", url]) == 0
        out = capsys.readouterr().out
        assert "Traceback (most recent call last)" in out
        assert "traceback of broken" in out

    def test_failure_backoff_grows_exponentially(self, store_url_for):
        store = ResultsStore.open(store_url_for("mem"))
        delays: list = []
        run_worker(
            ScenarioSuite("one", [_broken_spec()]),
            store,
            worker_id="w1",
            max_attempts=3,
            clock=_Clock(),
            backoff_base=1.0,
            sleep=delays.append,
            rng=lambda: 0.5,  # jitter multiplier pinned to 1.0
        )
        # one backoff after each non-final failed attempt: 1.0, then 2.0
        assert delays == [1.0, 2.0]


# --------------------------------------------------------------------------- #
# transient-error retry (satellite: bounded retry + backoff everywhere)
# --------------------------------------------------------------------------- #
class TestTransientRetries:
    def test_transient_classification(self):
        assert is_transient(ConnectionError("reset"))
        assert is_transient(TimeoutError("slow"))
        assert is_transient(TransientStorageError("throttle"))
        assert not is_transient(FileNotFoundError("absent is an answer"))
        assert not is_transient(ValueError("a bug, not weather"))

    def test_call_with_retries_absorbs_transient_blips(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise ConnectionError("blip")
            return "ok"

        assert (
            call_with_retries(flaky, retries=3, base_delay=0.0, sleep=lambda s: None)
            == "ok"
        )
        assert calls["n"] == 3

    def test_retry_budget_exhaustion_reraises(self):
        def always_down():
            raise TimeoutError("still down")

        with pytest.raises(TimeoutError):
            call_with_retries(
                always_down, retries=2, base_delay=0.0, sleep=lambda s: None
            )

    def test_non_transient_errors_are_never_retried(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            call_with_retries(broken, retries=5, base_delay=0.0)
        assert calls["n"] == 1

    def test_env_knob_controls_the_budget(self, monkeypatch):
        monkeypatch.setenv(RETRIES_ENV, "5")
        monkeypatch.setenv(RETRY_BASE_ENV, "0")
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 5:
                raise ConnectionError("blip")
            return "ok"

        assert call_with_retries(flaky, sleep=lambda s: None) == "ok"
        assert calls["n"] == 6

    def test_objectstore_ops_retry_through_the_wrapper(
        self, store_url_for, monkeypatch
    ):
        # the s3 backend's client calls run under call_with_retries: two
        # injected transient failures on the same op are absorbed
        monkeypatch.setenv(RETRIES_ENV, "3")
        monkeypatch.setenv(RETRY_BASE_ENV, "0")
        backend = backend_from_url(store_url_for("s3"))
        fails = {"n": 0}
        real_put = backend.client.put_object

        def flaky_put(bucket, key, body):
            if fails["n"] < 2:
                fails["n"] += 1
                raise ConnectionError("s3 blip")
            return real_put(bucket, key, body)

        monkeypatch.setattr(backend.client, "put_object", flaky_put)
        backend.put("a/entry.json", b"{}")
        assert fails["n"] == 2
        assert backend.get("a/entry.json") == b"{}"

    def test_lease_ops_survive_transient_store_blips(self, store_url_for):
        backend = FaultInjectingBackend(backend_from_url(store_url_for("mem")))
        store = ResultsStore(backend)
        rule = backend.add_rule(
            op="put",
            substring="lease.json",
            action="error",
            exc=lambda: ConnectionError("blip"),
            times=2,
        )
        m = LeaseManager(
            store, "w1", ttl=5.0, clock=_Clock(), retries=3, retry_base=0.0
        )
        assert m.try_claim(_payload_spec(0)) is not None
        assert rule.fired == 2


# --------------------------------------------------------------------------- #
# fleet drain: multiple workers, one store (exactly-once-effective)
# --------------------------------------------------------------------------- #
class TestFleetDrain:
    def test_two_workers_drain_one_suite(self, store_url_for):
        store = ResultsStore.open(store_url_for("mem"))
        suite = ScenarioSuite("drain", [_payload_spec(i) for i in range(8)])
        reports: dict = {}

        def drain(worker_id: str) -> None:
            reports[worker_id] = run_worker(
                suite, store, worker_id=worker_id, ttl=10.0, backoff_base=0.0, poll=0.01
            )

        threads = [
            threading.Thread(target=drain, args=(f"w{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        index = store.index()
        assert len(index) == 8  # every scenario exactly one committed entry
        assert all(e["status"] == "completed" for e in index.values())
        assert store.leases() == []  # fully drained: no lease objects remain
        covered = set()
        for report in reports.values():
            covered.update(report.completed)
            covered.update(report.already_done)
        assert covered == set(store.scenario_key(s) for s in suite)

    def test_worker_skips_scenarios_completed_by_others(self, store_url_for):
        store = ResultsStore.open(store_url_for("mem"))
        suite = ScenarioSuite("half", [_payload_spec(i) for i in range(4)])
        run_suite(suite, store)  # a prior batch finished everything
        report = run_worker(
            suite, store, worker_id="late", clock=_Clock(), backoff_base=0.0
        )
        assert report.claims == 0
        assert len(report.already_done) == 4


# --------------------------------------------------------------------------- #
# events and the status CLI (satellite: structured lease/progress events)
# --------------------------------------------------------------------------- #
class TestEventsAndStatus:
    def test_worker_persists_structured_events(self, store_url_for):
        store = ResultsStore.open(store_url_for("file"))
        suite = ScenarioSuite("one", [_payload_spec(0)])
        run_worker(suite, store, worker_id="emitter", clock=_Clock(), backoff_base=0.0)
        raw = store.backend.get("events/emitter.jsonl").decode()
        events = [json.loads(line) for line in raw.strip().splitlines()]
        assert [e["kind"] for e in events] == ["claimed", "committed", "released"]
        for event in events:
            assert event["worker"] == "emitter"
            assert event["scenario"] == store.scenario_key(_payload_spec(0))
            assert event["kind"] in LEASE_EVENT_KINDS

    def test_event_recorder_drops_broken_sinks(self):
        recorder = EventRecorder(clock=_Clock())
        seen: list = []

        def broken(event):
            raise RuntimeError("sink died")

        recorder.subscribe(broken)
        recorder.subscribe(seen.append)
        recorder.emit("claimed", "w1", "abc")
        recorder.emit("committed", "w1", "abc")
        assert len(recorder.events) == 2  # the recorder itself never fails
        assert len(seen) == 2  # healthy sinks keep receiving

    def test_status_cli_lists_workers_and_leases(self, store_url_for, capsys):
        url = store_url_for("file")
        store = ResultsStore.open(url)
        spec = _payload_spec(0)
        m = LeaseManager(store, "fleet-worker-1", ttl=60.0)
        assert m.try_claim(spec) is not None
        assert cli_main(["status", "--store", url]) == 0
        out = capsys.readouterr().out
        assert "fleet-worker-1" in out
        assert store.scenario_key(spec) in out
        # machine-readable form round-trips
        assert cli_main(["status", "--store", url, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["leases"][0]["worker"] == "fleet-worker-1"

    def test_work_cli_drains_a_suite(self, store_url_for, capsys):
        url = store_url_for("file")
        code = cli_main(
            [
                "work",
                "fleet",
                "--store",
                url,
                "--ttl",
                "30",
                "--max-claims",
                "2",
                "--worker-id",
                "cli-worker",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cli-worker" in out or "claim" in out
        store = ResultsStore.open(url)
        completed = [
            e for e in store.index().values() if e["status"] == "completed"
        ]
        assert len(completed) == 2  # the claim budget
        assert store.leases() == []
