"""Results store provenance, batch runner dispatch, and the CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.scenarios import ResultsStore, ScenarioSpec, ScenarioSuite, run_suite
from repro.scenarios.__main__ import main as cli_main
from repro.scenarios.spec import get_preset


def _tiny_solve_spec(name="tiny", **calibration):
    cal = {"num_generations": 4, "num_states": 1, "beta": 0.8}
    cal.update(calibration)
    return ScenarioSpec(
        name,
        calibration=cal,
        solver={"grid_level": 2, "tolerance": 1e-3, "max_iterations": 12},
    )


@pytest.fixture()
def tiny_suite():
    return ScenarioSuite(
        "tiny",
        [_tiny_solve_spec("tiny-lo", tau_labor=0.1), _tiny_solve_spec("tiny-hi", tau_labor=0.2)],
    )


class TestResultsStore:
    def test_run_records_provenance(self, tmp_path, tiny_suite):
        store = ResultsStore(tmp_path / "store")
        report = run_suite(tiny_suite, store)
        assert report.ok and report.count("completed") == 2
        for spec in tiny_suite:
            entry = store.entry(spec)
            assert entry["status"] == "completed"
            assert entry["spec_hash"] == spec.content_hash()
            assert entry["kind"] == "solve"
            assert entry["converged"] is True
            assert entry["iterations"] >= 1
            assert entry["wall_time"] > 0
            # provenance fields
            import repro

            assert entry["library_version"] == repro.__version__
            assert entry["numpy_version"] == np.__version__
            assert entry["python_version"]
            assert entry["created_at"]
            # per-iteration records land in the manifest
            assert len(entry["iteration_records"]) == entry["iterations"]
            # spec and result are on disk next to each other
            assert store.spec_path(spec).exists()
            assert store.result_path(spec).exists()
            assert not store.checkpoint_path(spec).exists()  # cleaned up

    def test_loadable_result_and_spec(self, tmp_path, tiny_suite):
        store = ResultsStore(tmp_path / "store")
        run_suite(tiny_suite, store)
        spec = tiny_suite[0]
        result = store.load_result(spec)
        assert result.converged
        clone = store.load_spec(spec)
        assert clone == spec

    def test_sharded_layout_on_disk(self, tmp_path, tiny_suite):
        store = ResultsStore(tmp_path / "store")
        run_suite(tiny_suite, store)
        # one committed entry.json per scenario hash, all valid JSON
        for h in tiny_suite.hashes():
            entry = json.loads(store.entry_path(h).read_text())
            assert entry["spec_hash"] == h
        # the append-only log is line-delimited JSON covering every hash
        lines = [json.loads(line) for line in store.log_path.read_text().splitlines()]
        assert {rec["spec_hash"] for rec in lines} == set(tiny_suite.hashes())
        assert set(store.index()) == set(tiny_suite.hashes())

    def test_describe_mentions_each_entry(self, tmp_path, tiny_suite):
        store = ResultsStore(tmp_path / "store")
        run_suite(tiny_suite, store)
        text = store.describe()
        for spec in tiny_suite:
            assert spec.name in text


class TestRunner:
    def test_skip_by_hash_then_force(self, env_store_url, tiny_suite):
        store = ResultsStore.open(env_store_url())
        assert run_suite(tiny_suite, store).count("completed") == 2
        second = run_suite(tiny_suite, store)
        assert second.count("skipped") == 2 and second.count("completed") == 0
        forced = run_suite(tiny_suite, store, force=True)
        assert forced.count("completed") == 2

    def test_interrupted_batch_resumes(self, env_store_url):
        suite = ScenarioSuite("one", [_tiny_solve_spec("resume-me")])
        store = ResultsStore.open(env_store_url())
        broken = run_suite(suite, store, interrupt_after=2)
        assert broken.count("interrupted") == 1
        assert store.entry(suite[0])["status"] == "interrupted"
        assert store.checkpoint_ref(suite[0]).exists()
        # identical re-invocation resumes from the checkpoint and completes
        fixed = run_suite(suite, store)
        assert fixed.count("completed") == 1
        entry = store.entry(suite[0])
        assert entry["status"] == "completed" and entry["resumed"] is True
        # resumed result equals an uninterrupted solve of the same spec
        fresh_store = ResultsStore.open(env_store_url("fresh"))
        run_suite(suite, fresh_store)
        a = store.load_result(suite[0])
        b = fresh_store.load_result(suite[0])
        assert a.iterations == b.iterations
        assert np.array_equal(a.error_history(), b.error_history())

    def test_worker_commit_survives_parent_death(self, env_store_url):
        # a worker that finishes commits its own entry into the sharded
        # store: the work is durable even if the parent dies right after,
        # and the restarted batch skips it by hash instead of re-solving
        import repro.scenarios.runner as runner_mod

        suite = ScenarioSuite("one", [_tiny_solve_spec("orphan")])
        store = ResultsStore.open(env_store_url())
        spec = suite[0]
        task = {
            "spec": spec.to_dict(),
            "store_url": store.url,
            "checkpoint_every": 1,
            "point_executor": "serial",
            "point_workers": 1,
            "interrupt_after": None,
        }
        entry = runner_mod._execute_task(task)
        assert entry["status"] == "completed"
        assert store.result_ref(spec).exists()
        assert store.has(spec)  # committed by the worker itself
        assert not store.checkpoint_ref(spec).exists()  # dropped post-commit
        report = run_suite(suite, store)
        assert report.count("skipped") == 1

    def test_reindex_recovers_entry_missing_from_log(self, env_store_url):
        # crash window: entry.json written but the log append never
        # happened (or the log was lost) — reindex heals the log from the
        # entry objects and the entry becomes discoverable again
        suite = ScenarioSuite("one", [_tiny_solve_spec("heal")])
        store = ResultsStore.open(env_store_url())
        run_suite(suite, store)
        store.backend.clear_commit_log()
        assert store.index() == {}  # log-based discovery finds nothing
        assert store.has(suite[0])  # ...but direct entry reads still work
        index = store.reindex()
        assert set(index) == {suite[0].content_hash()}
        assert set(store.index()) == {suite[0].content_hash()}

    def test_interrupt_with_sparse_checkpoint_still_resumable(self, env_store_url):
        # interrupt before the first periodic checkpoint would have fired:
        # a checkpoint must be forced so the re-run resumes, not restarts
        suite = ScenarioSuite("one", [_tiny_solve_spec("sparse")])
        store = ResultsStore.open(env_store_url())
        broken = run_suite(suite, store, interrupt_after=1, checkpoint_every=5)
        assert broken.count("interrupted") == 1
        assert store.checkpoint_ref(suite[0]).exists()
        fixed = run_suite(suite, store, checkpoint_every=5)
        assert fixed.count("completed") == 1
        assert store.entry(suite[0])["resumed"] is True

    def test_repeated_sparse_interrupts_make_progress(self, env_store_url):
        # kill-after-1 with checkpoint-every-5 must persist the newest state
        # each run (no livelock on a stale checkpoint): every re-invocation
        # advances at least one iteration and the suite eventually completes
        suite = ScenarioSuite("one", [_tiny_solve_spec("grind")])
        store = ResultsStore.open(env_store_url())
        for attempt in range(25):
            report = run_suite(suite, store, interrupt_after=1, checkpoint_every=5)
            if report.count("completed") == 1:
                break
        else:
            raise AssertionError("repeated kill/resume never completed (livelock)")
        assert store.has(suite[0])
        # the interrupted attempts each persisted one more iteration
        assert attempt + 1 <= store.load_result(suite[0]).iterations + 1

    def test_deferred_duplicate_mirrors_failed_twin(self, env_store_url):
        bad = ScenarioSpec("bad-a", kind="ablations", params={"which": "no-such"})
        twin = ScenarioSpec("bad-b", kind="ablations", params={"which": "no-such"})
        assert bad.content_hash() == twin.content_hash()
        store = ResultsStore.open(env_store_url())
        report = run_suite(ScenarioSuite("dups", [bad, twin]), store)
        assert report.count("failed") == 2  # the deferred twin must not read as ok
        assert not report.ok

    def test_duplicate_hash_runs_once(self, env_store_url):
        # same content, different names: must not race two workers on one
        # scenario directory — one runs, the twin is satisfied by hash
        suite = ScenarioSuite(
            "dups", [_tiny_solve_spec("twin-a"), _tiny_solve_spec("twin-b")]
        )
        assert suite[0].content_hash() == suite[1].content_hash()
        store = ResultsStore.open(env_store_url())
        report = run_suite(suite, store, executor="threads", num_workers=2)
        assert report.count("completed") == 1 and report.count("skipped") == 1
        assert store.load_result(suite[1]).converged  # twin reads the shared result

    def test_real_keyboard_interrupt_propagates(self, tmp_path, monkeypatch):
        # only SimulatedKill (the --interrupt-after hook) is converted into an
        # 'interrupted' entry; a genuine Ctrl-C must stop the whole batch
        import repro.scenarios.runner as runner_mod

        def raise_interrupt(spec, store, t0, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(runner_mod, "_execute_solve", raise_interrupt)
        suite = ScenarioSuite("one", [_tiny_solve_spec("ctrl-c")])
        with pytest.raises(KeyboardInterrupt):
            run_suite(suite, ResultsStore(tmp_path / "store"))

    def test_failed_scenario_does_not_kill_batch(self, env_store_url):
        suite = ScenarioSuite(
            "mixed",
            [
                ScenarioSpec("bad", kind="ablations", params={"which": "no-such"}),
                _tiny_solve_spec("good"),
            ],
        )
        store = ResultsStore.open(env_store_url())
        report = run_suite(suite, store)
        assert report.count("failed") == 1 and report.count("completed") == 1
        assert "no-such" in store.entry(suite[0])["error"]
        # failed entries are retried on the next run
        again = run_suite(suite, store)
        assert again.count("failed") == 1 and again.count("skipped") == 1

    def test_experiment_scenarios_store_payloads(self, env_store_url):
        suite = ScenarioSuite(
            "exp",
            [
                ScenarioSpec(
                    "abl", kind="ablations", params={"which": "partition", "total_processes": 8}
                ),
                ScenarioSpec(
                    "fig8", kind="fig8", params={"node_counts": [1, 4], "dim": 10, "levels": [2]}
                ),
            ],
        )
        store = ResultsStore.open(env_store_url())
        report = run_suite(suite, store)
        assert report.ok
        abl = store.load_payload(suite[0])
        assert abl["result"]["which"] == "partition"
        fig8 = store.load_payload(suite[1])
        assert fig8["result"]["node_counts"] == [1, 4]
        assert "formatted" in fig8["result"]

    def test_table_presets_run_through_runner(self, env_store_url):
        store = ResultsStore.open(env_store_url())
        report = run_suite(get_preset("table1"), store)
        assert report.ok
        payload = store.load_payload(get_preset("table1")[0])
        rows = payload["result"]["rows"]
        assert rows and rows[0]["dim"] == 12

    def test_threads_executor(self, env_store_url, tiny_suite):
        store = ResultsStore.open(env_store_url())
        report = run_suite(tiny_suite, store, executor="threads", num_workers=2)
        assert report.ok and report.count("completed") == 2

    def test_unknown_executor_rejected(self, tmp_path, tiny_suite):
        with pytest.raises(ValueError, match="unknown executor"):
            run_suite(tiny_suite, ResultsStore(tmp_path), executor="mpi")

    @pytest.mark.slow
    def test_process_executor(self, tmp_path, tiny_suite):
        store = ResultsStore(tmp_path / "store")
        report = run_suite(tiny_suite, store, executor="processes", num_workers=2)
        assert report.ok and report.count("completed") == 2
        for spec in tiny_suite:
            assert store.load_result(spec).converged


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out and "tax-reform" in out

    def test_dry_run_expands_without_solving(self, tmp_path, capsys):
        code = cli_main(["run", "smoke", "--store", str(tmp_path / "s"), "--dry-run"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 scenario(s)" in out
        assert not (tmp_path / "s" / "manifest.log").exists()

    def test_run_show_and_skip(self, tmp_path, capsys):
        store = str(tmp_path / "s")
        assert cli_main(["run", "smoke", "--store", store]) == 0
        assert cli_main(["show", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "2 completed" in out and "smoke-tau_labor=0.1" in out
        assert cli_main(["run", "smoke", "--store", store]) == 0
        assert "2 skipped" in capsys.readouterr().out

    def test_interrupt_then_resume_via_cli(self, tmp_path, capsys):
        store = str(tmp_path / "s")
        assert cli_main(["run", "smoke", "--store", store, "--interrupt-after", "1"]) == 1
        assert "interrupted" in capsys.readouterr().out
        assert cli_main(["run", "smoke", "--store", store]) == 0
        assert "2 completed" in capsys.readouterr().out

    def test_unknown_preset_exit_code(self, capsys):
        assert cli_main(["run", "nope", "--store", "/tmp/ignored"]) == 2
