"""Tests for the shared utilities."""

import logging
import time

import numpy as np
import pytest

from repro.utils.logging import enable_console_logging, get_logger
from repro.utils.rng import default_rng, spawn_rngs
from repro.utils.timing import Timer, WallClock
from repro.utils.validation import (
    check_in_unit_box,
    check_positive,
    check_probability_matrix,
    check_shape,
)


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.005

    def test_lap_and_restart(self):
        t = Timer()
        with t:
            pass
        t.restart()
        assert t.elapsed == 0.0
        assert t.lap() >= 0.0


class TestWallClock:
    def test_sections_accumulate(self):
        clock = WallClock()
        clock.add("solve", 1.0)
        clock.add("solve", 0.5)
        clock.add("fit", 0.25)
        assert clock.sections["solve"] == pytest.approx(1.5)
        assert clock.total == pytest.approx(1.75)
        assert clock.as_dict() == clock.sections

    def test_section_context_manager(self):
        clock = WallClock()
        with clock.section("work"):
            time.sleep(0.01)
        assert clock.sections["work"] >= 0.005


class TestRng:
    def test_default_rng_from_seed(self):
        a = default_rng(3).random(5)
        b = default_rng(3).random(5)
        np.testing.assert_allclose(a, b)

    def test_existing_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert default_rng(gen) is gen

    def test_spawn_rngs_independent(self):
        children = spawn_rngs(0, 4)
        assert len(children) == 4
        draws = [c.random() for c in children]
        assert len(set(draws)) == 4

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1.0)
        check_positive("x", 0.0, strict=False)
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        with pytest.raises(ValueError):
            check_positive("x", [-1.0, 2.0], strict=False)

    def test_check_probability_matrix(self):
        check_probability_matrix("pi", np.array([[0.4, 0.6], [0.5, 0.5]]))
        with pytest.raises(ValueError):
            check_probability_matrix("pi", np.array([[0.4, 0.4], [0.5, 0.5]]))
        with pytest.raises(ValueError):
            check_probability_matrix("pi", np.ones((2, 3)))

    def test_check_shape(self):
        check_shape("a", np.zeros((3, 2)), (3, 2))
        check_shape("a", np.zeros((3, 2)), (None, 2))
        with pytest.raises(ValueError):
            check_shape("a", np.zeros((3, 2)), (2, 2))
        with pytest.raises(ValueError):
            check_shape("a", np.zeros(3), (3, 1))

    def test_check_in_unit_box(self):
        check_in_unit_box("x", np.array([[0.0, 1.0], [0.5, 0.25]]))
        with pytest.raises(ValueError):
            check_in_unit_box("x", np.array([1.2]))


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger("core").name == "repro.core"
        assert get_logger("repro.grids").name == "repro.grids"

    def test_enable_console_logging_idempotent(self):
        enable_console_logging(logging.WARNING)
        logger = logging.getLogger("repro")
        handlers_before = len(logger.handlers)
        enable_console_logging(logging.WARNING)
        assert len(logger.handlers) == handlers_before
