"""End-to-end integration tests: solve a small OLG economy and use the result.

These tests exercise the whole stack together: calibration -> model ->
time iteration (with different executors) -> policy evaluation through the
compressed kernels -> accuracy diagnostics -> forward simulation.
"""

import numpy as np

from repro.core.time_iteration import TimeIterationConfig, TimeIterationSolver
from repro.olg.calibration import small_calibration
from repro.olg.model import OLGModel
from repro.olg.simulation import simulate_economy
from repro.parallel.scheduler import WorkStealingScheduler


class TestSmallEconomySolve:
    def test_time_iteration_converges(self, solved_small_olg):
        model, result = solved_small_olg
        assert result.converged
        assert result.iterations >= 3
        history = result.error_history("rel_linf")
        assert history[-1] < history[0]

    def test_policy_is_economically_sensible(self, solved_small_olg):
        """Savings non-negative at grid points, finite everywhere.

        Away from the grid the piecewise-linear interpolant may undershoot
        slightly, so only a small negative tolerance is allowed there.
        """
        model, result = solved_small_olg
        for z in range(model.num_states):
            policy = result.policy[z]
            nodal_savings = policy.nodal_values[:, : model.num_savers]
            assert np.all(nodal_savings >= -1e-10)
        sample = model.sample_states(15, rng=0)
        for z in range(model.num_states):
            values = np.atleast_2d(result.policy.evaluate(z, sample))
            savings = values[:, : model.num_savers]
            assert np.all(savings >= -0.1)
            assert np.all(np.isfinite(values))

    def test_euler_errors_reasonable_on_interior_sample(self, solved_small_olg):
        model, result = solved_small_olg
        lower, upper = model.domain.lower, model.domain.upper
        margin = 0.25 * (upper - lower)
        inner = model.domain.__class__(lower + margin, upper - margin)
        errors = model.equilibrium_errors(result.policy, inner.sample(20, rng=1))
        # coarse level-2 grids: errors are sizeable but bounded
        assert errors["l2"] < 0.5
        assert np.isfinite(errors["mean_log10"])

    def test_higher_productivity_state_has_higher_wage(self, solved_small_olg):
        model, _ = solved_small_olg
        k = float(model.steady_state.capital)
        wages = [model.environment(z, k).prices.wage for z in range(model.num_states)]
        productivities = model.calibration.shocks.label("productivity")
        assert np.argmax(wages) == np.argmax(productivities)

    def test_simulation_stays_bounded(self, solved_small_olg):
        model, result = solved_small_olg
        sim = simulate_economy(model, result.policy, periods=150, rng=4, burn_in=30)
        assert model.domain.contains(sim.states).all()
        assert sim.capital.std() < sim.capital.mean()  # no explosive dynamics


class TestExecutorEquivalence:
    def test_threaded_solve_matches_serial(self):
        """The work-stealing scheduler must not change the numerical result."""
        cal = small_calibration(num_generations=4, num_states=2, beta=0.8)
        model = OLGModel(cal)
        config = TimeIterationConfig(grid_level=2, tolerance=1e-3, max_iterations=6)
        serial = TimeIterationSolver(model, config).solve()
        threaded = TimeIterationSolver(
            model, config, executor=WorkStealingScheduler(3)
        ).solve()
        sample = model.sample_states(10, rng=2)
        for z in range(model.num_states):
            np.testing.assert_allclose(
                np.atleast_2d(serial.policy.evaluate(z, sample)),
                np.atleast_2d(threaded.policy.evaluate(z, sample)),
                rtol=1e-6,
                atol=1e-8,
            )


class TestStochasticTaxes:
    def test_tax_regimes_change_policies(self):
        """With stochastic labor taxes, savings differ across tax states."""
        cal = small_calibration(
            num_generations=4, num_states=1, beta=0.8, stochastic_taxes=True
        )
        model = OLGModel(cal)
        assert model.num_states == 2
        config = TimeIterationConfig(grid_level=2, tolerance=2e-3, max_iterations=20)
        result = TimeIterationSolver(model, config).solve()
        x = 0.5 * (model.domain.lower + model.domain.upper)
        low_tax = np.asarray(result.policy.evaluate(0, x)).reshape(-1)
        high_tax = np.asarray(result.policy.evaluate(1, x)).reshape(-1)
        # policies must differ across the tax regimes
        assert np.max(np.abs(low_tax - high_tax)) > 1e-4


class TestWarmStartAcrossLevels:
    def test_level3_restart_from_level2(self):
        """The paper restarts finer grids from coarser solutions (Sec. V-C)."""
        cal = small_calibration(num_generations=4, num_states=2, beta=0.8)
        model = OLGModel(cal)
        coarse_cfg = TimeIterationConfig(grid_level=2, tolerance=2e-3, max_iterations=25)
        coarse = TimeIterationSolver(model, coarse_cfg).solve()
        fine_cfg = TimeIterationConfig(grid_level=3, tolerance=2e-3, max_iterations=12)
        fine = TimeIterationSolver(model, fine_cfg).solve(initial_policy=coarse.policy)
        assert fine.policy.points_per_state[0] > coarse.policy.points_per_state[0]
        # warm-started fine solve should converge within the iteration budget
        assert fine.converged
