"""Tests for the Table II / Fig. 6 kernel benchmark harness."""

import pytest

from repro.experiments.table2_fig6 import PAPER_TABLE2, format_table2, run_table2


@pytest.fixture(scope="module")
def small_run():
    # a small grid keeps the test fast while exercising the full harness
    return run_table2(dim=12, levels=(3,), num_dofs=8, num_queries=20, repeats=1)


class TestTable2:
    def test_all_paper_kernels_timed(self, small_run):
        exp = small_run[0]
        names = [t.kernel for t in exp.timings]
        for kernel in ("gold", "x86", "avx", "avx2", "avx512", "cuda"):
            assert kernel in names

    def test_gold_speedup_is_one(self, small_run):
        assert small_run[0].timing("gold").speedup_vs_gold == pytest.approx(1.0)

    def test_compressed_kernels_beat_gold(self, small_run):
        """The headline result: the compressed layout is faster than the dense one."""
        exp = small_run[0]
        for kernel in ("x86", "avx2", "cuda"):
            assert exp.timing(kernel).speedup_vs_gold > 1.0

    def test_timings_positive(self, small_run):
        for t in small_run[0].timings:
            assert t.seconds_per_query > 0

    def test_paper_reference_attached_for_59d(self):
        run = run_table2(dim=59, levels=(3,), num_dofs=4, num_queries=5, repeats=1,
                         kernels=("gold", "cuda"))
        timing = run[0].timing("cuda")
        assert timing.paper_seconds_per_query == PAPER_TABLE2["7k"]["cuda"]
        assert timing.paper_speedup_vs_gold == pytest.approx(
            PAPER_TABLE2["7k"]["gold"] / PAPER_TABLE2["7k"]["cuda"]
        )

    def test_kernel_subset_selection(self):
        run = run_table2(dim=8, levels=(2,), num_dofs=2, num_queries=5, repeats=1,
                         kernels=("gold", "x86"))
        assert len(run[0].timings) == 2

    def test_format_output(self, small_run):
        text = format_table2(small_run)
        assert "kernel" in text
        assert "gold" in text
        assert "speedup" in text
