"""Tests for the ablation experiments."""

import pytest

from repro.experiments.ablations import (
    run_partition_ablation,
    run_reordering_ablation,
    run_scheduler_ablation,
)


class TestPartitionAblation:
    def test_proportional_no_worse_than_uniform(self):
        result = run_partition_ablation(total_processes=48, seed=2)
        assert result.imbalance_proportional <= result.imbalance_uniform + 1e-9
        assert result.improvement >= 1.0

    def test_strongly_skewed_sizes_show_clear_benefit(self):
        result = run_partition_ablation(
            points_per_state=[200_000, 20_000, 20_000, 20_000], total_processes=26
        )
        assert result.imbalance_uniform > 2 * result.imbalance_proportional

    def test_equal_sizes_make_rules_coincide(self):
        result = run_partition_ablation(
            points_per_state=[50_000] * 8, total_processes=32
        )
        assert result.imbalance_proportional == pytest.approx(result.imbalance_uniform)


class TestSchedulerAblation:
    def test_stealing_beats_static(self):
        result = run_scheduler_ablation(num_tasks=1_000, num_workers=16, seed=1)
        assert result.makespan_stealing < result.makespan_static
        assert result.speedup_from_stealing > 1.0
        assert result.efficiency_stealing > result.efficiency_static

    def test_homogeneous_tasks_show_little_difference(self):
        result = run_scheduler_ablation(
            num_tasks=1_600, num_workers=8, heavy_fraction=0.0, seed=0
        )
        assert result.speedup_from_stealing == pytest.approx(1.0, abs=0.25)


class TestReorderingAblation:
    def test_runs_and_reports_positive_times(self):
        result = run_reordering_ablation(
            dim=6, level=4, num_dofs=8, num_queries=40, repeats=1
        )
        assert result.seconds_reordered > 0
        assert result.seconds_unordered > 0
        assert result.num_points > 0
        # results from both orderings must be numerically identical, so the
        # ratio only reflects memory-layout effects and stays near 1 in NumPy
        assert 0.2 < result.speedup_from_reordering < 5.0
