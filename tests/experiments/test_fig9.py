"""Tests for the Fig. 9 convergence experiment harness (scaled-down settings)."""

import numpy as np
import pytest

from repro.experiments.fig9 import format_fig9, run_fig9


@pytest.fixture(scope="module")
def result():
    # the smallest configuration that still exercises both a regular stage and
    # one adaptive stage
    return run_fig9(
        num_generations=4,
        num_states=2,
        grid_level=2,
        refinement_epsilons=(1e-1,),
        max_refine_level=3,
        max_points_per_state=60,
        stage_tolerance=5e-3,
        max_iterations_per_stage=6,
        num_error_samples=8,
        seed=3,
    )


class TestFig9:
    def test_series_have_consistent_lengths(self, result):
        n = result.num_iterations
        assert n > 0
        assert result.error_l2.shape == (n,)
        assert result.error_linf.shape == (n,)
        assert result.cumulative_time.shape == (n,)
        assert len(result.points_per_state) == n

    def test_two_stages_recorded(self, result):
        assert set(np.unique(result.stages)) == {0, 1}
        assert len(result.stage_epsilons) == 2
        assert len(result.converged_stages) == 2

    def test_cumulative_time_increasing(self, result):
        assert np.all(np.diff(result.cumulative_time) > 0)

    def test_errors_finite_and_positive(self, result):
        assert np.all(np.isfinite(result.error_l2))
        assert np.all(result.error_l2 > 0)
        assert np.all(result.error_linf >= result.error_l2)

    def test_adaptive_stage_error_not_worse_than_coarse_stage(self, result):
        """Refinement stages do not degrade the converged accuracy.

        (The raw iteration-1 error can be *lower* than later iterations on
        very coarse grids, because the initial guess is artificially
        self-consistent; the meaningful comparison is between stage-final
        errors, which is what the paper's staged epsilon schedule targets.)
        """
        finals = result.stage_final_errors("l2")
        assert finals[-1] <= finals[0] * 1.05

    def test_adaptive_stage_adds_points(self, result):
        first_stage_points = result.points_per_state[0]
        last_points = result.final_points_per_state
        assert sum(last_points) >= sum(first_stage_points)

    def test_stage_final_errors_non_increasing(self, result):
        finals = result.stage_final_errors("l2")
        assert finals[-1] <= finals[0] * 1.05  # allow tiny numerical wiggle

    def test_format_output(self, result):
        text = format_fig9(result)
        assert "euler L2" in text
        assert "stage" in text
        assert "paper anchors" in text
