"""Tests for the Fig. 8 strong-scaling experiment harness."""

import numpy as np
import pytest

from repro.experiments.fig8 import DEFAULT_NODE_COUNTS, PAPER_FIG8, format_fig8, run_fig8


@pytest.fixture(scope="module")
def result():
    return run_fig8()


class TestFig8:
    def test_node_counts_match_paper_axis(self, result):
        np.testing.assert_array_equal(result.node_counts, DEFAULT_NODE_COUNTS)

    def test_single_node_time_matches_paper(self, result):
        assert result.single_node_seconds == pytest.approx(
            PAPER_FIG8["single_node_seconds"], rel=0.01
        )

    def test_efficiency_at_4096_near_paper_value(self, result):
        assert result.efficiency_at_max_nodes == pytest.approx(
            PAPER_FIG8["efficiency_at_4096"], abs=0.07
        )

    def test_normalized_total_decreases(self, result):
        assert np.all(np.diff(result.normalized_total) < 0)
        assert result.normalized_total[0] == pytest.approx(1.0)

    def test_total_above_ideal(self, result):
        assert np.all(result.normalized_total >= result.normalized_ideal - 1e-12)

    def test_per_level_series_present(self, result):
        assert set(result.normalized_levels) == {3, 4}
        # level 4 dominates the single-node time
        assert result.normalized_levels[4][0] > result.normalized_levels[3][0]

    def test_level3_efficiency_worse_than_level4_at_scale(self, result):
        l3 = result.normalized_levels[3]
        l4 = result.normalized_levels[4]
        # speedup achieved by each level from 1 to 4096 nodes
        assert l4[0] / l4[-1] > l3[0] / l3[-1]

    def test_custom_node_counts(self):
        small = run_fig8(node_counts=(1, 2, 8))
        assert small.node_counts.tolist() == [1, 2, 8]

    def test_format_output(self, result):
        text = format_fig8(result)
        assert "4096" in text
        assert "efficiency" in text
        assert "20,4" in text  # the single-node seconds
