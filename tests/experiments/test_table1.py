"""Tests for the Table I experiment harness."""

import pytest

from repro.experiments.table1 import PAPER_TABLE1, format_table1, run_table1


class TestTable1:
    def test_level3_row_matches_paper_exactly(self):
        """The reproduction hits the paper's Table I numbers for the 7k case."""
        rows = run_table1(levels=(3,))
        row = rows[0]
        assert row.num_points == PAPER_TABLE1[3]["nno"] == 7_081
        assert row.xps_per_state == PAPER_TABLE1[3]["xps_per_state"] == 237
        assert row.dim == 59
        assert row.num_states == 16

    def test_point_counts_without_building(self):
        rows = run_table1(levels=(3, 4), build_grids=False)
        assert rows[0].num_points == 7_081
        assert rows[1].num_points == 281_077
        assert rows[1].paper_num_points == 281_077

    def test_smaller_dimension_variant(self):
        rows = run_table1(dim=10, levels=(3,))
        assert rows[0].paper_num_points is None
        assert rows[0].num_points > 0
        assert rows[0].nfreq == 2

    def test_format_contains_paper_columns(self):
        rows = run_table1(levels=(3,))
        text = format_table1(rows)
        assert "7k" in text
        assert "237" in text
        assert "7081" in text

    def test_zeros_fraction_close_to_paper_quote(self):
        """Sec. IV-B quotes ~96.8% zero content after the re-coding."""
        rows = run_table1(levels=(3,))
        assert rows[0].zeros_fraction == pytest.approx(0.967, abs=0.01)
