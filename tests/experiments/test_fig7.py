"""Tests for the Fig. 7 single-node experiment harness."""

import pytest

from repro.experiments.fig7 import PAPER_FIG7, format_fig7, run_fig7


@pytest.fixture(scope="module")
def result():
    # the smallest meaningful instance: enough points for the modeled node
    # speedups to saturate is not required here, only harness correctness
    return run_fig7(num_generations=4, num_states=2, grid_level=2, num_threads=2)


class TestFig7:
    def test_variant_names_present(self, result):
        names = [v.name for v in result.variants]
        assert any("1 thread" in n for n in names)
        assert any("work stealing" in n for n in names)
        assert any("piz daint" in n for n in names)
        assert any("grand tave" in n for n in names)

    def test_baseline_speedup_is_one(self, result):
        assert result.variant("host: 1 thread").speedup == pytest.approx(1.0)

    def test_modeled_knl_anchor(self, result):
        """The Grand Tave entry carries the paper's ~96x own-thread speedup."""
        knl = [v for v in result.variants if "grand tave: KNL" in v.name][0]
        assert knl.speedup == pytest.approx(
            PAPER_FIG7["grand_tave_node_speedup_own_thread"], rel=0.05
        )

    def test_modeled_daint_gpu_faster_than_cpu_only(self, result):
        cpu = [v for v in result.variants if "all CPU cores" in v.name][0]
        gpu = [v for v in result.variants if "CPU + GPU" in v.name][0]
        assert gpu.speedup >= cpu.speedup

    def test_wall_times_positive(self, result):
        for v in result.variants:
            assert v.wall_time > 0

    def test_total_points_counted(self, result):
        # level-2 grid in d=3 has 2*3+1 = 7 points per state, 2 states
        assert result.total_points == 2 * 7

    def test_saturated_instance_hits_25x_anchor(self):
        """With enough grid points per node, the modeled Piz Daint node speedup
        reaches the paper's ~25x."""
        result = run_fig7(num_generations=6, num_states=4, grid_level=2, num_threads=2)
        gpu = [v for v in result.variants if "CPU + GPU" in v.name][0]
        assert gpu.speedup == pytest.approx(
            PAPER_FIG7["piz_daint_node_speedup"], rel=0.05
        )

    def test_format_output(self, result):
        text = format_fig7(result)
        assert "wall time" in text
        assert "paper anchors" in text
