"""Local validation of the CI pipeline definition (act-style).

CI only helps if the workflow file itself is kept honest: valid YAML,
jobs that exist, commands that reference scripts actually in the repo,
and a test matrix that really covers two python versions.  These tests
run in tier-1, so a PR that breaks the pipeline definition fails before
it ever reaches GitHub.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO = Path(__file__).resolve().parents[1]
WORKFLOW = REPO / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def workflow() -> dict:
    assert WORKFLOW.exists(), "the CI workflow file is missing"
    return yaml.safe_load(WORKFLOW.read_text())


def _run_commands(job: dict) -> list:
    return [step["run"] for step in job["steps"] if "run" in step]


class TestWorkflowStructure:
    def test_valid_yaml_with_required_jobs(self, workflow):
        assert workflow["name"] == "CI"
        assert set(workflow["jobs"]) >= {"tests", "bench", "lint"}

    def test_triggers_cover_push_and_pr(self, workflow):
        # YAML 1.1 parses the bare key `on` as boolean True
        triggers = workflow.get("on", workflow.get(True))
        assert "pull_request" in triggers and "push" in triggers

    def test_matrix_covers_two_python_versions(self, workflow):
        versions = workflow["jobs"]["tests"]["strategy"]["matrix"]["python-version"]
        assert len(set(versions)) >= 2

    def test_every_job_checks_out_and_sets_up_python(self, workflow):
        for name, job in workflow["jobs"].items():
            uses = [step.get("uses", "") for step in job["steps"]]
            assert any(u.startswith("actions/checkout@") for u in uses), name
            assert any(u.startswith("actions/setup-python@") for u in uses), name


class TestJobsReferenceRealThings:
    def test_tests_job_runs_tier1_command(self, workflow):
        commands = " && ".join(_run_commands(workflow["jobs"]["tests"]))
        assert "PYTHONPATH=src" in commands
        assert re.search(r"python -m pytest -x -q", commands)

    def test_bench_job_script_exists_and_is_executable(self, workflow):
        commands = " && ".join(_run_commands(workflow["jobs"]["bench"]))
        match = re.search(r"bash (\S+\.sh)", commands)
        assert match, "bench job must invoke a shell script"
        script = REPO / match.group(1)
        assert script.exists(), f"{script} referenced by ci.yml does not exist"
        assert os.access(script, os.X_OK) or script.suffix == ".sh"

    def test_bench_script_gates_perf_and_resume(self):
        script = (REPO / "benchmarks" / "run_quick.sh").read_text()
        assert "bench_hierarchize.py" in script  # the >=5x guard lives here
        assert "--interrupt-after" in script  # the kill/resume smoke sweep
        assert (REPO / "benchmarks" / "bench_hierarchize.py").exists()

    def test_lint_job_runs_ruff_and_config_exists(self, workflow):
        commands = " && ".join(_run_commands(workflow["jobs"]["lint"]))
        assert "ruff check" in commands
        assert "ruff format --check" in commands
        assert "[tool.ruff]" in (REPO / "pyproject.toml").read_text()

    def test_repo_respects_configured_line_length(self, workflow):
        # the lint job enforces E501 at line-length 100 in CI; catch
        # violations locally so the PR does not bounce there
        config = (REPO / "pyproject.toml").read_text()
        limit = int(re.search(r"line-length = (\d+)", config).group(1))
        offenders = []
        for folder in ("src", "tests", "examples", "benchmarks"):
            for path in sorted((REPO / folder).rglob("*.py")):
                for lineno, line in enumerate(path.read_text().splitlines(), 1):
                    if len(line) > limit and "noqa" not in line:  # ruff honours noqa
                        offenders.append(f"{path.relative_to(REPO)}:{lineno} ({len(line)})")
        assert not offenders, f"lines over {limit} chars: " + ", ".join(offenders[:10])


class TestPipelineExtensions:
    """PR 4 additions: pip caching, bench artifact upload, mem:// leg."""

    def test_every_setup_python_caches_pip(self, workflow):
        # pip installs are cached keyed on pyproject.toml in every job
        for name, job in workflow["jobs"].items():
            setups = [
                step for step in job["steps"]
                if step.get("uses", "").startswith("actions/setup-python@")
            ]
            assert setups, name
            for step in setups:
                assert step["with"].get("cache") == "pip", name
                assert step["with"].get("cache-dependency-path") == "pyproject.toml", name

    def test_bench_job_uploads_quick_bench_artifact(self, workflow):
        job = workflow["jobs"]["bench"]
        uploads = [
            step for step in job["steps"]
            if step.get("uses", "").startswith("actions/upload-artifact@")
        ]
        assert uploads, "bench job must upload the quick-bench JSON artifact"
        assert "bench_quick.json" in uploads[0]["with"]["path"]
        # the run step must redirect the artifact out of the scratch dir
        commands = " && ".join(_run_commands(job))
        assert "QUICK_BENCH_OUT" in commands

    def test_quick_bench_out_is_overridable(self):
        script = (REPO / "benchmarks" / "run_quick.sh").read_text()
        # default stays in the scratch dir; CI overrides to a persistent path
        assert 'QUICK_BENCH_OUT="${QUICK_BENCH_OUT:-' in script

    def test_matrix_has_mem_store_leg(self, workflow):
        matrix = workflow["jobs"]["tests"]["strategy"]["matrix"]
        legs = matrix.get("include", [])
        mem = [leg for leg in legs if leg.get("store-url") == "mem://"]
        assert mem, "tests matrix needs a REPRO_STORE_URL=mem:// leg"
        commands = " && ".join(_run_commands(workflow["jobs"]["tests"]))
        assert "REPRO_STORE_URL" in commands
        assert "tests/scenarios" in commands

    def test_bench_script_sweeps_file_and_object_store(self):
        # the kill/resume + diff smoke sweep must run against both a
        # file:// URL and an object-store URL (acceptance criterion)
        script = (REPO / "benchmarks" / "run_quick.sh").read_text()
        assert 'smoke_sweep "file://' in script
        assert 'smoke_sweep "s3://' in script
        assert "--store-b" in script  # cross-backend diff leg


class TestCompactionAndFixtureCache:
    """PR 5 additions: compaction smoke leg + grid-fixture caching."""

    def test_bench_script_compacts_the_object_store_sweep(self):
        # the s3:// sweep is compacted, then show/diff re-run against the
        # compacted store (commit-log lifecycle acceptance)
        script = (REPO / "benchmarks" / "run_quick.sh").read_text()
        compact_at = script.index("scenarios compact")
        assert "--grace 0" in script
        # show and diff run again AFTER the compaction
        assert "scenarios show" in script[compact_at:]
        assert "scenarios diff" in script[compact_at:]
        assert "COMMIT_LOG_PREFIX" in script  # asserts the fold actually happened

    def test_jobs_cache_session_scope_grid_fixtures(self, workflow):
        # the expensive session fixtures are cached across CI runs, keyed
        # on src/ so the cache dies with the code that produced it
        for name in ("tests", "bench"):
            job = workflow["jobs"][name]
            caches = [
                step for step in job["steps"]
                if step.get("uses", "").startswith("actions/cache@")
            ]
            assert caches, f"{name} job must restore the fixture cache"
            assert "repro-fixtures" in caches[0]["with"]["path"], name
            assert "hashFiles('src/**'" in caches[0]["with"]["key"], name
            # unpinned deps (numpy) change the bit-exact fixture values;
            # the key must carry the resolved-environment fingerprint too
            assert "steps.deps.outputs.hash" in caches[0]["with"]["key"], name
            commands = " && ".join(_run_commands(job))
            assert "pip freeze" in commands, name
            assert "REPRO_TEST_FIXTURE_CACHE" in commands, name

    def test_conftest_honours_the_fixture_cache_variable(self):
        conftest = (REPO / "tests" / "conftest.py").read_text()
        assert "REPRO_TEST_FIXTURE_CACHE" in conftest


class TestObservability:
    """PR 7 additions: fleet run report generated + uploaded per run."""

    def test_bench_script_reports_on_the_fleet_drain(self):
        # the SIGKILL-steal fleet leg must render the HTML run report and
        # assert the telemetry recorded >= 1 steal and every completion
        script = (REPO / "benchmarks" / "run_quick.sh").read_text()
        assert "scenarios report" in script
        assert "--format html" in script
        assert 'QUICK_REPORT_OUT="${QUICK_REPORT_OUT:-' in script  # overridable
        assert 'data["steals"] >= 1' in script
        assert "committed == expected" in script

    def test_bench_job_uploads_fleet_report_artifact(self, workflow):
        job = workflow["jobs"]["bench"]
        uploads = [
            step for step in job["steps"]
            if step.get("uses", "").startswith("actions/upload-artifact@")
        ]
        report_uploads = [
            step for step in uploads if "fleet-report.html" in step["with"]["path"]
        ]
        assert report_uploads, "bench job must upload the fleet run report"
        assert report_uploads[0]["with"]["if-no-files-found"] == "ignore"
        commands = " && ".join(_run_commands(job))
        assert "QUICK_REPORT_OUT" in commands


class TestBatchedSolveGate:
    """PR 8 additions: batched-solve bench guard + workflow hygiene."""

    def test_bench_script_guards_batched_solve_speedup(self):
        # run_quick.sh must run the batched-solve benchmark in quick mode
        # and fail the run when the speedup over sequential drops below 2x
        script = (REPO / "benchmarks" / "run_quick.sh").read_text()
        assert "bench_solve.py --quick" in script
        assert 'BENCH_SOLVE_OUT="${BENCH_SOLVE_OUT:-' in script  # overridable
        assert 'artifact["speedup"] < 2.0' in script
        assert (REPO / "benchmarks" / "bench_solve.py").exists()

    def test_committed_solve_artifact_shows_2x_on_16_scenarios(self):
        # the full-sweep artifact at the repo root is the acceptance
        # record: 16 shared-topology scenarios, >= 2x batched speedup,
        # policies agreeing to solver tolerance
        import json

        artifact = json.loads((REPO / "BENCH_solve.json").read_text())
        assert artifact["n_scenarios"] == 16
        assert artifact["speedup"] >= 2.0
        assert artifact["max_policy_diff"] < artifact["tolerance"]

    def test_bench_job_uploads_solve_bench_artifact(self, workflow):
        job = workflow["jobs"]["bench"]
        uploads = [
            step for step in job["steps"]
            if step.get("uses", "").startswith("actions/upload-artifact@")
        ]
        solve_uploads = [
            step for step in uploads if "bench_solve_quick.json" in step["with"]["path"]
        ]
        assert solve_uploads, "bench job must upload the batched-solve artifact"
        assert solve_uploads[0]["with"]["if-no-files-found"] == "ignore"
        commands = " && ".join(_run_commands(job))
        assert "BENCH_SOLVE_OUT" in commands

    def test_concurrency_cancels_superseded_pr_runs(self, workflow):
        group = workflow["concurrency"]
        assert "github.ref" in group["group"]
        # PR pushes cancel the in-flight run; main pushes run to completion
        assert "pull_request" in str(group["cancel-in-progress"])

    def test_matrix_covers_python_313(self, workflow):
        versions = workflow["jobs"]["tests"]["strategy"]["matrix"]["python-version"]
        assert "3.13" in versions
        assert len(set(versions)) >= 3

    def test_format_check_is_blocking(self, workflow):
        steps = workflow["jobs"]["lint"]["steps"]
        format_steps = [s for s in steps if "ruff format --check" in s.get("run", "")]
        assert format_steps, "lint job must run ruff format --check"
        assert not format_steps[0].get("continue-on-error", False), (
            "the format check must be blocking, not advisory"
        )

    def test_bytecode_is_ignored_and_untracked(self):
        gitignore = (REPO / ".gitignore").read_text()
        assert "__pycache__/" in gitignore
        assert "*.pyc" in gitignore
        assert "bench_quick.json" in gitignore
        assert "fleet-report.html" in gitignore
        import subprocess

        tracked = subprocess.run(
            ["git", "ls-files", "*.pyc", "**/__pycache__/*"],
            cwd=REPO, capture_output=True, text=True,
        )
        if tracked.returncode == 0:  # not all environments have the repo's git
            assert tracked.stdout.strip() == "", (
                f"bytecode files are tracked: {tracked.stdout}"
            )


class TestQueryIndexPipeline:
    """PR 9 additions: MinIO conformance job + store-query smoke leg."""

    def test_minio_job_runs_conformance_against_real_s3(self, workflow):
        job = workflow["jobs"].get("minio")
        assert job, "CI needs the containerized-MinIO conformance job"
        services = job.get("services", {})
        minio = services.get("minio", {})
        assert "minio" in minio.get("image", ""), minio
        assert "9000:9000" in [str(p) for p in minio.get("ports", [])]
        env = job.get("env", {})
        assert env.get("REPRO_S3_ENDPOINT", "").startswith("http://"), env
        assert "AWS_ACCESS_KEY_ID" in env and "AWS_SECRET_ACCESS_KEY" in env
        commands = " && ".join(_run_commands(job))
        # boto3 is a CI-only install: the library itself must not need it
        assert "boto3" in commands
        assert "boto3" not in (REPO / "pyproject.toml").read_text(), (
            "boto3 must stay a CI-only install, not a package dependency"
        )
        assert "create_bucket" in commands, "the test bucket must be created up front"
        assert "tests/scenarios/test_backend_contract.py" in commands

    def test_conftest_reroutes_s3_urls_onto_live_endpoint(self):
        conftest = (REPO / "tests" / "scenarios" / "conftest.py").read_text()
        assert "REPRO_S3_ENDPOINT" in conftest
        assert "test-bucket" in conftest

    def test_bench_script_queries_the_compacted_sweep(self):
        # the query smoke leg must run over the already-compacted s3://
        # sweep so the answer provably comes out of the folded sidecar
        script = (REPO / "benchmarks" / "run_quick.sh").read_text()
        compact_at = script.index("scenarios compact")
        query_at = script.index("scenarios query")
        assert query_at > compact_at, "query smoke must follow compaction"
        assert "tau_labor>0.15" in script
        assert "--status completed" in script
        assert "len(matches) == 1" in script


class TestStaticAnalysisGate:
    """PR 10 additions: invariant analyzer job, mypy ladder, s3:// leg."""

    def test_analysis_job_runs_analyzer_and_mypy(self, workflow):
        job = workflow["jobs"].get("analysis")
        assert job, "CI needs the blocking invariant-analyzer job"
        commands = " && ".join(_run_commands(job))
        assert "repro-analyze src" in commands, "the analyzer must scan src/"
        assert "repro-analyze --version" in commands
        assert "mypy" in commands, "the job must run the mypy ladder"
        # blocking: no step may be advisory
        assert not any(step.get("continue-on-error") for step in job["steps"])

    def test_analyzer_console_script_is_declared(self):
        config = (REPO / "pyproject.toml").read_text()
        # :run wraps main() with SIGPIPE tolerance for `--list-rules | head`
        assert 'repro-analyze = "repro.analysis.__main__:run"' in config

    def test_mypy_ladder_is_configured(self):
        config = (REPO / "pyproject.toml").read_text()
        assert "[tool.mypy]" in config
        # the strict rung must cover the concurrent store/lease stack
        for module in (
            "repro.scenarios.backends",
            "repro.scenarios.lease",
            "repro.scenarios.store",
            "repro.scenarios.spec",
        ):
            assert module in config, f"mypy strict rung must include {module}"
        assert "disallow_untyped_defs = true" in config
        assert "strict_equality = true" in config

    def test_matrix_has_s3_store_leg_with_ttl_override(self, workflow):
        matrix = workflow["jobs"]["tests"]["strategy"]["matrix"]
        legs = matrix.get("include", [])
        s3 = [leg for leg in legs if leg.get("store-url") == "s3://"]
        assert s3, "tests matrix needs a REPRO_STORE_URL=s3:// leg"
        assert float(s3[0].get("lease-ttl", 0)) > 30.0, (
            "the s3 leg must raise the lease TTL for object-store latency"
        )
        commands = " && ".join(_run_commands(workflow["jobs"]["tests"]))
        assert "REPRO_LEASE_TTL" in commands

    def test_invariants_doc_covers_every_shipped_rule(self):
        # every rule the analyzer ships must be documented with its
        # motivating incident; a rule without a documented rationale is
        # unreviewable when it fires
        import subprocess
        import sys

        doc = (REPO / "docs" / "INVARIANTS.md").read_text()
        listing = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            cwd=REPO, capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        )
        assert listing.returncode == 0, listing.stderr
        rule_ids = [
            line.split()[0]
            for line in listing.stdout.splitlines()
            if line.strip() and not line[0].isspace()
        ]
        assert len(rule_ids) >= 6
        for rule_id in rule_ids:
            assert f"`{rule_id}`" in doc, f"docs/INVARIANTS.md must document {rule_id}"
