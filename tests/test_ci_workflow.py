"""Local validation of the CI pipeline definition (act-style).

CI only helps if the workflow file itself is kept honest: valid YAML,
jobs that exist, commands that reference scripts actually in the repo,
and a test matrix that really covers two python versions.  These tests
run in tier-1, so a PR that breaks the pipeline definition fails before
it ever reaches GitHub.
"""

from __future__ import annotations

import os
import re
from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

REPO = Path(__file__).resolve().parents[1]
WORKFLOW = REPO / ".github" / "workflows" / "ci.yml"


@pytest.fixture(scope="module")
def workflow() -> dict:
    assert WORKFLOW.exists(), "the CI workflow file is missing"
    return yaml.safe_load(WORKFLOW.read_text())


def _run_commands(job: dict) -> list:
    return [step["run"] for step in job["steps"] if "run" in step]


class TestWorkflowStructure:
    def test_valid_yaml_with_required_jobs(self, workflow):
        assert workflow["name"] == "CI"
        assert set(workflow["jobs"]) >= {"tests", "bench", "lint"}

    def test_triggers_cover_push_and_pr(self, workflow):
        # YAML 1.1 parses the bare key `on` as boolean True
        triggers = workflow.get("on", workflow.get(True))
        assert "pull_request" in triggers and "push" in triggers

    def test_matrix_covers_two_python_versions(self, workflow):
        versions = workflow["jobs"]["tests"]["strategy"]["matrix"]["python-version"]
        assert len(set(versions)) >= 2

    def test_every_job_checks_out_and_sets_up_python(self, workflow):
        for name, job in workflow["jobs"].items():
            uses = [step.get("uses", "") for step in job["steps"]]
            assert any(u.startswith("actions/checkout@") for u in uses), name
            assert any(u.startswith("actions/setup-python@") for u in uses), name


class TestJobsReferenceRealThings:
    def test_tests_job_runs_tier1_command(self, workflow):
        commands = " && ".join(_run_commands(workflow["jobs"]["tests"]))
        assert "PYTHONPATH=src" in commands
        assert re.search(r"python -m pytest -x -q", commands)

    def test_bench_job_script_exists_and_is_executable(self, workflow):
        commands = " && ".join(_run_commands(workflow["jobs"]["bench"]))
        match = re.search(r"bash (\S+\.sh)", commands)
        assert match, "bench job must invoke a shell script"
        script = REPO / match.group(1)
        assert script.exists(), f"{script} referenced by ci.yml does not exist"
        assert os.access(script, os.X_OK) or script.suffix == ".sh"

    def test_bench_script_gates_perf_and_resume(self):
        script = (REPO / "benchmarks" / "run_quick.sh").read_text()
        assert "bench_hierarchize.py" in script  # the >=5x guard lives here
        assert "--interrupt-after" in script  # the kill/resume smoke sweep
        assert (REPO / "benchmarks" / "bench_hierarchize.py").exists()

    def test_lint_job_runs_ruff_and_config_exists(self, workflow):
        commands = " && ".join(_run_commands(workflow["jobs"]["lint"]))
        assert "ruff check" in commands
        assert "ruff format --check" in commands
        assert "[tool.ruff]" in (REPO / "pyproject.toml").read_text()

    def test_repo_respects_configured_line_length(self, workflow):
        # the lint job enforces E501 at line-length 100 in CI; catch
        # violations locally so the PR does not bounce there
        config = (REPO / "pyproject.toml").read_text()
        limit = int(re.search(r"line-length = (\d+)", config).group(1))
        offenders = []
        for folder in ("src", "tests", "examples", "benchmarks"):
            for path in sorted((REPO / folder).rglob("*.py")):
                for lineno, line in enumerate(path.read_text().splitlines(), 1):
                    if len(line) > limit and "noqa" not in line:  # ruff honours noqa
                        offenders.append(f"{path.relative_to(REPO)}:{lineno} ({len(line)})")
        assert not offenders, f"lines over {limit} chars: " + ", ".join(offenders[:10])
