"""Micro-benchmark of the hierarchization (fit) path.

Compares three variants on regular grids of increasing level, for scalar
and multi-dof nodal values:

``seed``
    The original implementation: a per-point Python loop that rebuilds the
    ancestor structure with ``itertools.product`` and per-tuple dict probes
    on every call, followed by a per-row surplus sweep.  Reproduced here
    verbatim so the speedup stays measurable after the production code
    moved on.
``cold``
    The vectorized CSR pipeline on a fresh grid (structure construction
    included) — the cost of the *first* ``hierarchize`` call on a grid.
``warm``
    The vectorized pipeline with the grid-attached structure cache already
    populated — the cost of every *subsequent* call, i.e. what each
    adaptive-refinement pass and each time-iteration step pays.

Writes a ``BENCH_hierarchize.json`` artifact (repo root) with per-case
times and speedups for the perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_hierarchize.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import itertools
import json
import time
from pathlib import Path

import numpy as np

from repro.grids.grid import SparseGrid
from repro.grids.hierarchical import ancestors_1d, basis_1d
from repro.grids.hierarchize import hierarchize
from repro.grids.regular import regular_sparse_grid


# --------------------------------------------------------------------------- #
# the seed implementation (frozen copy, used as the "before" baseline)
# --------------------------------------------------------------------------- #
def _seed_ancestor_structure(grid: SparseGrid) -> list[tuple[np.ndarray, np.ndarray]]:
    structure: list[tuple[np.ndarray, np.ndarray]] = []
    dim = grid.dim
    points = grid.points
    for row in range(len(grid)):
        lev = grid.levels[row]
        idx = grid.indices[row]
        x = points[row]
        per_dim: list[list[tuple[int, int]]] = []
        for t in range(dim):
            chain = [(int(lev[t]), int(idx[t]))]
            chain.extend(ancestors_1d(int(lev[t]), int(idx[t])))
            per_dim.append(chain)
        rows: list[int] = []
        weights: list[float] = []
        for combo in itertools.product(*per_dim):
            if all(combo[t] == (int(lev[t]), int(idx[t])) for t in range(dim)):
                continue
            anc_lev = [c[0] for c in combo]
            anc_idx = [c[1] for c in combo]
            if not grid.contains(anc_lev, anc_idx):
                continue
            weight = 1.0
            for t in range(dim):
                weight *= basis_1d(float(x[t]), combo[t][0], combo[t][1])
                if weight == 0.0:
                    break
            if weight == 0.0:
                continue
            rows.append(grid.index_of(anc_lev, anc_idx))
            weights.append(weight)
        structure.append(
            (np.asarray(rows, dtype=np.int64), np.asarray(weights, dtype=float))
        )
    return structure


def _seed_hierarchize(grid: SparseGrid, values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    squeeze = values.ndim == 1
    vals = values[:, None] if squeeze else values
    surplus = np.array(vals, dtype=float, copy=True)
    structure = _seed_ancestor_structure(grid)
    order = np.argsort(grid.levels.sum(axis=1), kind="stable")
    for row in order:
        anc_rows, weights = structure[row]
        if anc_rows.size:
            surplus[row] -= weights @ surplus[anc_rows]
    return surplus[:, 0] if squeeze else surplus


# --------------------------------------------------------------------------- #
# timing harness
# --------------------------------------------------------------------------- #
def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_case(dim: int, level: int, num_dofs: int, repeats: int = 3) -> dict:
    """Time seed / cold / warm hierarchization for one grid configuration."""
    grid = regular_sparse_grid(dim, level)
    rng = np.random.default_rng(level * 100 + dim)
    shape = (len(grid),) if num_dofs == 1 else (len(grid), num_dofs)
    values = rng.standard_normal(shape)

    seed_s = _best_of(lambda: _seed_hierarchize(grid, values), repeats)

    def cold():
        fresh = grid.copy()  # empty caches: measures construction + sweep
        hierarchize(fresh, values)

    cold_s = _best_of(cold, repeats)

    hierarchize(grid, values)  # populate the grid-attached cache
    warm_s = _best_of(lambda: hierarchize(grid, values), repeats)

    # correctness guard: the benchmark is void if the variants disagree
    np.testing.assert_allclose(
        hierarchize(grid, values), _seed_hierarchize(grid, values), atol=1e-12
    )

    return {
        "dim": dim,
        "level": level,
        "num_points": len(grid),
        "num_dofs": num_dofs,
        "seed_seconds": seed_s,
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "cold_speedup_vs_seed": seed_s / cold_s,
        "warm_speedup_vs_seed": seed_s / warm_s,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="levels 2-4 only")
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_hierarchize.json",
        help="path of the JSON artifact",
    )
    args = parser.parse_args(argv)

    levels = range(2, 5) if args.quick else range(2, 7)
    cases = [(2, level, dofs) for level in levels for dofs in (1, 8)]
    if not args.quick:
        cases += [(3, 4, 1), (3, 4, 8), (5, 4, 8)]

    results = []
    for dim, level, dofs in cases:
        case = bench_case(dim, level, dofs)
        results.append(case)
        print(
            f"dim={dim} level={level} dofs={dofs:>2} points={case['num_points']:>6}  "
            f"seed={case['seed_seconds'] * 1e3:8.3f}ms  "
            f"cold={case['cold_seconds'] * 1e3:8.3f}ms ({case['cold_speedup_vs_seed']:6.1f}x)  "
            f"warm={case['warm_seconds'] * 1e3:8.3f}ms ({case['warm_speedup_vs_seed']:6.1f}x)"
        )

    headline = next(
        (c for c in results if c["dim"] == 2 and c["level"] == 5 and c["num_dofs"] == 1),
        None,
    )
    artifact = {
        "benchmark": "hierarchize",
        "description": "fit-path (hierarchization) time: seed loop vs vectorized "
        "CSR pipeline, cold (structure built) and warm (grid cache hit)",
        "headline_warm_speedup_dim2_level5": (
            headline["warm_speedup_vs_seed"] if headline else None
        ),
        "cases": results,
    }
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
