"""Fig. 9 benchmark — time-iteration convergence on a scaled-down economy.

Runs the staged refinement experiment (regular level-2 stage followed by an
adaptive stage) on a small OLG economy and records the error series and the
final grid sizes; also benchmarks a single time-iteration step, which is
the unit of work the paper's node-hours axis counts.

With ``REPRO_FULL_BENCH=1`` the larger default configuration of
``run_fig9`` (A = 6, two adaptive stages) is used.
"""

from __future__ import annotations

import os

import pytest

from repro.core.time_iteration import TimeIterationConfig, TimeIterationSolver
from repro.experiments.fig9 import run_fig9
from repro.olg.calibration import small_calibration
from repro.olg.model import OLGModel


#: Paper-scale configurations are opt-in via the environment.
FULL_BENCH = os.environ.get("REPRO_FULL_BENCH", "0") not in ("0", "", "false")



@pytest.mark.benchmark(group="fig9-convergence")
def bench_fig9_staged_convergence(benchmark):
    """The staged epsilon-schedule experiment (error vs. iterations / time)."""
    if FULL_BENCH:
        kwargs = dict(num_generations=6, num_states=2)
    else:
        kwargs = dict(
            num_generations=4,
            num_states=2,
            refinement_epsilons=(1e-1,),
            max_points_per_state=80,
            max_iterations_per_stage=8,
            num_error_samples=12,
        )
    result = benchmark.pedantic(run_fig9, kwargs=kwargs, rounds=1, iterations=1)
    # refinement stages must not make the solution worse, and the adaptive
    # stage must add grid points (the mechanism behind the paper's error decay)
    finals = result.stage_final_errors("l2")
    assert finals[-1] <= finals[0] * 1.05
    assert sum(result.final_points_per_state) > sum(result.points_per_state[0])
    benchmark.extra_info["iterations"] = int(result.num_iterations)
    benchmark.extra_info["final_error_l2"] = float(result.error_l2[-1])
    benchmark.extra_info["error_reduction"] = float(round(result.error_reduction("l2"), 2))
    benchmark.extra_info["final_points_per_state"] = result.final_points_per_state


@pytest.mark.benchmark(group="fig9-time-step")
def bench_single_time_iteration_step(benchmark):
    """One time-iteration step of the small economy (the paper's unit of work)."""
    cal = small_calibration(num_generations=5, num_states=2, beta=0.8)
    model = OLGModel(cal)
    solver = TimeIterationSolver(model, TimeIterationConfig(grid_level=2, max_iterations=1))
    initial = solver.initial_policy()
    policy = benchmark.pedantic(solver.step, args=(initial,), rounds=2, iterations=1)
    benchmark.extra_info["points_per_state"] = policy.points_per_state
