"""Fig. 8 benchmark — strong scaling of one time step to 4,096 nodes.

Evaluates the calibrated workload-distribution model over the paper's node
counts and stores the normalized execution times, ideal curve and parallel
efficiencies in ``extra_info``; asserts the two quantitative anchors
(20,471 s single-node runtime, ~70 % efficiency at 4,096 nodes).
"""

from __future__ import annotations

import pytest

from repro.experiments.fig8 import PAPER_FIG8, run_fig8
from repro.parallel.cluster import GRAND_TAVE_NODE
from repro.parallel.scaling import StrongScalingModel


@pytest.mark.benchmark(group="fig8-strong-scaling")
def bench_fig8_piz_daint_sweep(benchmark):
    """The Fig. 8 sweep on the Piz Daint hardware model."""
    result = benchmark.pedantic(run_fig8, rounds=3, iterations=1)
    for i, nodes in enumerate(result.node_counts):
        benchmark.extra_info[f"normalized_time[{int(nodes)}]"] = float(
            round(result.normalized_total[i], 6)
        )
        benchmark.extra_info[f"efficiency[{int(nodes)}]"] = float(
            round(result.efficiency[i], 3)
        )
    benchmark.extra_info["single_node_seconds"] = round(result.single_node_seconds, 1)
    assert result.single_node_seconds == pytest.approx(
        PAPER_FIG8["single_node_seconds"], rel=0.01
    )
    assert result.efficiency_at_max_nodes == pytest.approx(
        PAPER_FIG8["efficiency_at_4096"], abs=0.07
    )


@pytest.mark.benchmark(group="fig8-strong-scaling")
def bench_fig8_knl_cluster_sweep(benchmark):
    """The same workload on the Grand Tave (KNL) hardware model.

    The paper could not scale on Grand Tave beyond ~200 nodes because of the
    machine's size (footnote 11); the model extrapolates the same workload,
    and a Piz Daint node should remain ~2x faster node-for-node.
    """

    def run():
        model = StrongScalingModel.paper_workload(node=GRAND_TAVE_NODE, use_gpu=False)
        return model.normalized_times([1, 4, 16, 64, 128])

    data = benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(e > 0.9 for e in data["efficiency"])
    benchmark.extra_info["efficiency[128]"] = float(round(data["efficiency"][-1], 3))


@pytest.mark.benchmark(group="fig8-model-evaluation")
def bench_scaling_model_single_evaluation(benchmark):
    """Cost of one execution-time prediction (used inside parameter sweeps)."""
    model = StrongScalingModel.paper_workload()
    point = benchmark(model.execution_time, 1024)
    assert point.nodes == 1024
    benchmark.extra_info["efficiency_1024"] = round(point.efficiency, 3)
