"""Table I benchmark — grid construction and ASG index compression.

Regenerates the columns of the paper's Table I (grid sizes, xps table sizes)
and times the compression pipeline itself.  Paper reference values are
attached to the benchmark's ``extra_info`` so ``--benchmark-json`` output
carries the comparison.
"""

from __future__ import annotations

import os

import pytest

from repro.core.compression import compress_grid, compression_stats
from repro.experiments.table1 import PAPER_TABLE1, run_table1
from repro.grids.regular import regular_grid_size, regular_sparse_grid


#: Paper-scale configurations are opt-in via the environment.
FULL_BENCH = os.environ.get("REPRO_FULL_BENCH", "0") not in ("0", "", "false")



@pytest.mark.benchmark(group="table1-grid-construction")
def bench_build_7k_grid(benchmark):
    """Construction of the 59-dimensional level-3 ("7k") sparse grid."""
    grid = benchmark(regular_sparse_grid, 59, 3)
    assert len(grid) == PAPER_TABLE1[3]["nno"]


@pytest.mark.benchmark(group="table1-compression")
def bench_compress_7k_grid(benchmark, paper_7k_grid):
    """ASG index compression of the "7k" grid (Sec. IV-B pipeline)."""
    comp = benchmark(compress_grid, paper_7k_grid)
    stats = compression_stats(paper_7k_grid, comp)
    benchmark.extra_info["num_points"] = stats["num_points"]
    benchmark.extra_info["num_xps"] = stats["num_xps"]
    benchmark.extra_info["paper_num_xps"] = PAPER_TABLE1[3]["xps_per_state"]
    benchmark.extra_info["nfreq"] = stats["nfreq"]
    benchmark.extra_info["zeros_fraction"] = stats["zeros_fraction"]
    assert stats["num_xps"] == PAPER_TABLE1[3]["xps_per_state"]


@pytest.mark.benchmark(group="table1-closed-form")
def bench_closed_form_sizes(benchmark):
    """Closed-form grid sizes for all paper levels (used by the Fig. 8 model)."""

    def compute():
        return {level: regular_grid_size(59, level) for level in (2, 3, 4, 5)}

    sizes = benchmark(compute)
    assert sizes[3] == 7_081
    assert sizes[4] == 281_077
    benchmark.extra_info["sizes"] = sizes


@pytest.mark.benchmark(group="table1-table")
def bench_table1_harness(benchmark):
    """The full Table I harness (level 3 by default, level 3+4 in full mode)."""
    levels = (3, 4) if FULL_BENCH else (3,)
    rows = benchmark.pedantic(
        run_table1, kwargs={"levels": levels}, rounds=1, iterations=1
    )
    for row in rows:
        if row.paper_xps_per_state is not None:
            assert row.xps_per_state == row.paper_xps_per_state
        benchmark.extra_info[f"level_{row.level}_points"] = row.num_points
        benchmark.extra_info[f"level_{row.level}_xps"] = row.xps_per_state
