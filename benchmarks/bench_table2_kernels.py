"""Table II benchmark — interpolation kernel runtimes on the "7k" grid.

One benchmark per kernel variant, all evaluating the same random surplus
matrix (118 dofs, as in the paper) at the same batch of random query
points on the 59-dimensional level-3 grid.  The paper's measured times are
attached as ``extra_info`` for comparison; absolute values differ (NumPy
vs. hand-vectorized C++/CUDA on a P100), the ordering and the
compressed-vs-dense gap are what the reproduction preserves.

Run with ``REPRO_FULL_BENCH=1`` to also exercise the "300k" (level-4) grid
with 1,000 query points, the paper's full configuration.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.compression import compress_grid
from repro.core.kernels import evaluate, list_kernels
from repro.experiments.table2_fig6 import PAPER_TABLE2
from repro.grids.regular import regular_sparse_grid


KERNELS = list_kernels()

#: Paper-scale configurations are opt-in via the environment.
FULL_BENCH = os.environ.get("REPRO_FULL_BENCH", "0") not in ("0", "", "false")



@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.benchmark(group="table2-7k-kernels")
def bench_kernel_7k(benchmark, kernel, paper_7k_compressed, paper_7k_surplus, query_points):
    """Kernel runtime on the "7k" test case (Table II, first column)."""
    comp = paper_7k_compressed
    surplus = paper_7k_surplus
    queries = query_points

    result = benchmark.pedantic(
        evaluate,
        args=(comp, surplus, queries),
        kwargs={"kernel": kernel},
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.shape == (queries.shape[0], surplus.shape[1])
    benchmark.extra_info["kernel"] = kernel
    benchmark.extra_info["num_queries"] = int(queries.shape[0])
    benchmark.extra_info["num_points"] = comp.num_points
    benchmark.extra_info["paper_seconds_per_query"] = PAPER_TABLE2["7k"].get(kernel)


@pytest.mark.skipif(not FULL_BENCH, reason="set REPRO_FULL_BENCH=1 for the 300k case")
@pytest.mark.parametrize("kernel", ["gold", "x86", "avx512", "cuda"])
@pytest.mark.benchmark(group="table2-300k-kernels")
def bench_kernel_300k(benchmark, kernel, query_points):
    """Kernel runtime on the "300k" test case (Table II, second column)."""
    grid = regular_sparse_grid(59, 4)
    comp = compress_grid(grid)
    rng = np.random.default_rng(2)
    surplus = rng.standard_normal((len(grid), 118))
    queries = query_points[: min(len(query_points), 200)]
    result = benchmark.pedantic(
        evaluate,
        args=(comp, surplus, queries),
        kwargs={"kernel": kernel},
        rounds=1,
        iterations=1,
    )
    assert result.shape[0] == queries.shape[0]
    benchmark.extra_info["paper_seconds_per_query"] = PAPER_TABLE2["300k"].get(kernel)
    benchmark.extra_info["num_points"] = comp.num_points
