"""Fig. 7 benchmark — single-node performance of one OLG time step.

Times one time-iteration step of a scaled-down OLG economy with the serial
executor and with the work-stealing scheduler, and records the modeled
Piz Daint / Grand Tave node speedups (25x / 96x anchors of Sec. V-B) in the
benchmark ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.core.time_iteration import TimeIterationConfig, TimeIterationSolver
from repro.experiments.fig7 import PAPER_FIG7, run_fig7
from repro.olg.calibration import small_calibration
from repro.olg.model import OLGModel
from repro.parallel.scheduler import WorkStealingScheduler


@pytest.fixture(scope="module")
def olg_step_setup():
    cal = small_calibration(num_generations=6, num_states=4, beta=0.8)
    model = OLGModel(cal)
    config = TimeIterationConfig(grid_level=2, max_iterations=1)
    solver = TimeIterationSolver(model, config)
    initial = solver.initial_policy()
    return model, config, initial


@pytest.mark.benchmark(group="fig7-single-node-step")
def bench_time_step_serial(benchmark, olg_step_setup):
    """One time step of the OLG model, one host thread (the Fig. 7 baseline)."""
    model, config, initial = olg_step_setup
    solver = TimeIterationSolver(model, config)
    policy = benchmark.pedantic(solver.step, args=(initial,), rounds=2, iterations=1)
    benchmark.extra_info["total_points"] = policy.total_points
    benchmark.extra_info["paper_baseline_seconds"] = PAPER_FIG7[
        "piz_daint_single_thread_seconds"
    ]


@pytest.mark.benchmark(group="fig7-single-node-step")
def bench_time_step_work_stealing(benchmark, olg_step_setup):
    """One time step with the TBB-like work-stealing scheduler (4 workers).

    Because the per-point solves are pure-Python/GIL bound, the measured
    speedup on the host is modest; the hardware-model anchors are recorded
    by :func:`bench_fig7_harness` below.
    """
    model, config, initial = olg_step_setup
    solver = TimeIterationSolver(model, config, executor=WorkStealingScheduler(4))
    policy = benchmark.pedantic(solver.step, args=(initial,), rounds=2, iterations=1)
    benchmark.extra_info["total_points"] = policy.total_points


@pytest.mark.benchmark(group="fig7-node-models")
def bench_fig7_harness(benchmark):
    """The full Fig. 7 harness: measured host variants + modeled node speedups."""
    result = benchmark.pedantic(
        run_fig7,
        kwargs={"num_generations": 6, "num_states": 4, "num_threads": 4},
        rounds=1,
        iterations=1,
    )
    for variant in result.variants:
        key = variant.name.replace(" ", "_").replace(":", "").replace("/", "_")
        benchmark.extra_info[f"speedup[{key}]"] = round(variant.speedup, 2)
    gpu = [v for v in result.variants if "CPU + GPU" in v.name][0]
    knl = [v for v in result.variants if "grand tave: KNL" in v.name][0]
    assert gpu.speedup == pytest.approx(PAPER_FIG7["piz_daint_node_speedup"], rel=0.1)
    assert knl.speedup == pytest.approx(
        PAPER_FIG7["grand_tave_node_speedup_own_thread"], rel=0.1
    )
