"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (see
DESIGN.md's per-experiment index).  The default configurations are sized so
the whole suite runs in a few minutes on a laptop; set the environment
variable ``REPRO_FULL_BENCH=1`` to run the paper-scale configurations
(59-dimensional level-4 "300k" grid, 1,000 query points), which takes
substantially longer.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.compression import compress_grid
from repro.grids.regular import regular_sparse_grid

FULL_BENCH = os.environ.get("REPRO_FULL_BENCH", "0") not in ("0", "", "false")


def full_bench_enabled() -> bool:
    return FULL_BENCH


@pytest.fixture(scope="session")
def paper_7k_grid():
    """The paper's "7k" test case: level-3 sparse grid in 59 dimensions."""
    return regular_sparse_grid(59, 3)


@pytest.fixture(scope="session")
def paper_7k_compressed(paper_7k_grid):
    return compress_grid(paper_7k_grid)


@pytest.fixture(scope="session")
def paper_7k_surplus(paper_7k_grid):
    rng = np.random.default_rng(0)
    return rng.standard_normal((len(paper_7k_grid), 118))


@pytest.fixture(scope="session")
def query_points():
    rng = np.random.default_rng(1)
    n = 1_000 if FULL_BENCH else 64
    return rng.random((n, 59))
