"""Benchmark of batched multi-scenario time iteration vs sequential solves.

Runs a 16-scenario sweep sharing one grid topology (same generations, shock
count, grid level — only calibration scalars differ) two ways:

``sequential``
    One :class:`~repro.core.time_iteration.TimeIterationSolver` per
    scenario, back to back — today's per-scenario path and the behavior
    the batched driver falls back to.
``batched``
    One :class:`~repro.core.batched.BatchedTimeIterationSolver` over the
    whole sweep: a single shared regular grid, every iteration solving a
    ``(n_scenarios, n_points)`` stacked Newton batch with per-scenario
    convergence masking.

The two are *not* bit-identical (the batched Newton takes its own path to
the same fixed point) — the benchmark asserts the final policies agree to
solver tolerance and that every scenario converges in the same number of
iterations, then reports the wall-time speedup.  The CI quick-bench guard
requires the batched path to be at least 2x faster.

Writes a ``BENCH_solve.json`` artifact (repo root) for the perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_solve.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.batched import BatchedTimeIterationSolver, BatchMember
from repro.core.time_iteration import TimeIterationSolver
from repro.scenarios.spec import ScenarioSpec, ScenarioSuite


def sweep_suite(quick: bool = False) -> ScenarioSuite:
    """The shared-topology sweep: 4 tax rates x 4 betas (x2 in quick mode)."""
    base = ScenarioSpec(
        name="bench",
        calibration={"num_generations": 4, "num_states": 1, "beta": 0.8},
        solver={"grid_level": 2, "tolerance": 1e-3, "max_iterations": 12},
    )
    return ScenarioSuite.cartesian(
        "bench-solve",
        base,
        {
            "calibration.tau_labor": [0.05, 0.10, 0.15, 0.20],
            "calibration.beta": [0.78, 0.82] if quick else [0.76, 0.78, 0.80, 0.82],
        },
    )


def _policy_diff(a, b) -> float:
    """Max abs difference of two results' policies at the grid points."""
    diff = 0.0
    for z in range(len(a.policy.policies)):
        pa = a.policy[z]
        X = pa.interpolant.domain.from_unit(pa.grid.points)
        diff = max(
            diff,
            float(
                np.max(np.abs(np.atleast_2d(pa(X)) - np.atleast_2d(b.policy[z](X))))
            ),
        )
    return diff


def bench(quick: bool = False) -> dict:
    suite = sweep_suite(quick)
    specs = list(suite)

    # warm numpy/BLAS and the solver caches outside the timed sections
    warm = specs[0]
    TimeIterationSolver(warm.build_model(), warm.build_config()).solve()

    t0 = time.perf_counter()
    sequential = [
        TimeIterationSolver(spec.build_model(), spec.build_config()).solve()
        for spec in specs
    ]
    sequential_s = time.perf_counter() - t0

    members = [
        BatchMember(key=spec.name, model=spec.build_model(), config=spec.build_config())
        for spec in specs
    ]
    t0 = time.perf_counter()
    outcomes = BatchedTimeIterationSolver(members).solve()
    batched_s = time.perf_counter() - t0

    tolerance = float(specs[0].solver["tolerance"])
    max_diff = 0.0
    scenarios = []
    for spec, seq in zip(specs, sequential):
        out = outcomes[spec.name]
        if out.result is None or out.fallback:
            raise RuntimeError(
                f"{spec.name}: batched solve fell back ({out.fallback_reason})"
            )
        if not (seq.converged and out.result.converged):
            raise RuntimeError(
                f"{spec.name}: did not converge "
                f"(sequential={seq.converged}, batched={out.result.converged})"
            )
        diff = _policy_diff(seq, out.result)
        max_diff = max(max_diff, diff)
        scenarios.append(
            {
                "name": spec.name,
                "iterations_sequential": seq.iterations,
                "iterations_batched": out.result.iterations,
                "policy_diff": diff,
            }
        )
    if max_diff >= tolerance:
        raise RuntimeError(
            f"batched policies diverge from sequential: {max_diff:.3e} >= {tolerance:g}"
        )

    return {
        "benchmark": "solve",
        "description": "shared-topology scenario sweep: sequential per-scenario "
        "time iteration vs the batched multi-scenario driver",
        "n_scenarios": len(specs),
        "tolerance": tolerance,
        "sequential_seconds": sequential_s,
        "batched_seconds": batched_s,
        "speedup": sequential_s / batched_s,
        "max_policy_diff": max_diff,
        "scenarios": scenarios,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="half-size sweep (CI quick-bench leg)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_solve.json",
        help="path of the JSON artifact",
    )
    args = parser.parse_args(argv)

    artifact = bench(quick=args.quick)
    print(
        f"{artifact['n_scenarios']} scenarios: "
        f"sequential={artifact['sequential_seconds'] * 1e3:8.1f}ms  "
        f"batched={artifact['batched_seconds'] * 1e3:8.1f}ms  "
        f"speedup={artifact['speedup']:.2f}x  "
        f"max_policy_diff={artifact['max_policy_diff']:.3e}"
    )
    args.out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
