#!/usr/bin/env bash
# Quick verification + fit-path perf smoke: tier-1 tests followed by the
# hierarchization micro-benchmark, so fit-path perf regressions surface
# alongside correctness failures.  Usage: benchmarks/run_quick.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -q
python benchmarks/bench_hierarchize.py --quick

python - <<'EOF'
import json

artifact = json.load(open("BENCH_hierarchize.json"))
slow = [
    c for c in artifact["cases"]
    if c["num_points"] >= 29 and c["warm_speedup_vs_seed"] < 5.0
]
if slow:
    raise SystemExit(f"fit-path perf regression: warm speedup < 5x on {slow}")
print("quick bench OK: warm hierarchize >= 5x seed on all non-trivial grids")
EOF
