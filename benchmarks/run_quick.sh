#!/usr/bin/env bash
# Quick verification + solve/fit-path perf smoke: tier-1 tests followed by
# a 2-scenario CLI smoke sweep (with a kill/resume leg) run against BOTH a
# file:// store and an s3:// object-store URL (bundled in-process fake
# server), the hierarchization micro-benchmark, and the batched-solve
# benchmark, so scenario-engine, storage-backend, fit-path and solve-path
# regressions surface alongside correctness failures.
# Usage: benchmarks/run_quick.sh
#   QUICK_BENCH_OUT=<path> overrides where the quick-bench JSON artifact
#   lands (CI sets it to a persistent path and uploads it per run).
#   BENCH_SOLVE_OUT=<path> does the same for the batched-solve artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -q

SCRATCH="$(mktemp -d)"
trap 'rm -rf "$SCRATCH"' EXIT

# --- scenario-engine smoke sweep through the CLI ------------------------- #
# The same sweep must work unchanged against any store URL; run it once on
# the local-filesystem backend and once on the object-store backend.
smoke_sweep() {
    local store_url="$1" fresh_url="$2"
    echo "=== smoke sweep against $store_url ==="
    python -m repro.scenarios run smoke --store "$store_url" --dry-run
    # first pass is killed after one iteration (checkpoint survives) ...
    python -m repro.scenarios run smoke --store "$store_url" --interrupt-after 1 || true
    # ... the resumable checkpoints show up in the resume listing ...
    python -m repro.scenarios resume --store "$store_url"
    # ... and the identical re-invocation resumes from them and completes
    python -m repro.scenarios run smoke --store "$store_url"
    python -m repro.scenarios show --store "$store_url"
    # the two smoke entries differ only in tau_labor; diff must say so
    python -m repro.scenarios diff \
        "$(python -c 'from repro.scenarios import get_preset; print(get_preset("smoke")[0].content_hash())')" \
        "$(python -c 'from repro.scenarios import get_preset; print(get_preset("smoke")[1].content_hash())')" \
        --store "$store_url"

    SCENARIO_STORE_URL="$store_url" SCENARIO_FRESH_URL="$fresh_url" python - <<'EOF'
import os, numpy as np
from repro.scenarios import ResultsStore, get_preset, run_suite

store = ResultsStore.open(os.environ["SCENARIO_STORE_URL"])
suite = get_preset("smoke")
entries = [store.entry(s) for s in suite]
assert all(e and e["status"] == "completed" for e in entries), entries
assert all(e["resumed"] for e in entries), "smoke sweep should have resumed from checkpoints"

# resumed results must match uninterrupted solves of the same specs
fresh = ResultsStore.open(os.environ["SCENARIO_FRESH_URL"])
run_suite(suite, fresh)
for spec in suite:
    a, b = store.load_result(spec), fresh.load_result(spec)
    assert a.iterations == b.iterations
    X = spec.build_model().domain.sample(20, rng=0)
    diff = max(
        float(np.max(np.abs(a.policy.evaluate(z, X) - b.policy.evaluate(z, X))))
        for z in range(len(a.policy))
    )
    assert diff <= 1e-12, f"{spec.name}: resumed vs uninterrupted policy diff {diff}"
print(f"scenario smoke OK on {store.url}: killed sweep resumed bit-for-bit "
      "and was skipped-by-hash safe")
EOF
}

smoke_sweep "file://$SCRATCH/store" "file://$SCRATCH/store-fresh"
smoke_sweep "s3://quick-bench/sweep?endpoint=$SCRATCH/object-store" \
            "s3://quick-bench/sweep-fresh?endpoint=$SCRATCH/object-store"

# --- cross-backend diff: file:// entry vs object-store entry ------------- #
python -m repro.scenarios diff \
    "$(python -c 'from repro.scenarios import get_preset; print(get_preset("smoke")[0].content_hash())')" \
    "$(python -c 'from repro.scenarios import get_preset; print(get_preset("smoke")[1].content_hash())')" \
    --store "file://$SCRATCH/store" \
    --store-b "s3://quick-bench/sweep?endpoint=$SCRATCH/object-store"

# --- commit-log compaction smoke ------------------------------------------ #
# Fold the s3:// sweep's per-commit objects into a snapshot checkpoint,
# then re-run show/diff against the compacted store: every answer must
# come out of one snapshot object plus the (empty) un-folded tail.
S3_STORE="s3://quick-bench/sweep?endpoint=$SCRATCH/object-store"
python -m repro.scenarios compact --store "$S3_STORE" --grace 0
python -m repro.scenarios show --store "$S3_STORE"
python -m repro.scenarios diff \
    "$(python -c 'from repro.scenarios import get_preset; print(get_preset("smoke")[0].content_hash())')" \
    "$(python -c 'from repro.scenarios import get_preset; print(get_preset("smoke")[1].content_hash())')" \
    --store "$S3_STORE"

SCENARIO_STORE_URL="$S3_STORE" python - <<'EOF'
import os
from repro.scenarios import ResultsStore, get_preset
from repro.scenarios.backends import COMMIT_LOG_PREFIX, SNAPSHOT_PREFIX

store = ResultsStore.open(os.environ["SCENARIO_STORE_URL"])
assert store.backend.list(COMMIT_LOG_PREFIX) == [], "compaction left per-commit objects"
assert len(store.backend.list(SNAPSHOT_PREFIX)) == 1, "expected exactly one snapshot"
suite = get_preset("smoke")
assert set(store.index()) == set(suite.hashes())
assert all(store.has(s) for s in suite)
print(f"compaction smoke OK on {store.url}: one snapshot answers index/show/diff")
EOF

# --- store-query smoke ----------------------------------------------------- #
# The compacted sweep above also folded the queryable secondary index;
# a calibration-field predicate over the CLI must answer out of that
# sidecar.  The smoke preset's two scenarios differ only in tau_labor
# (0.10 vs 0.20), so tau_labor>0.15 selects exactly the high-tax one.
python -m repro.scenarios query --store "$S3_STORE" \
    --where "tau_labor>0.15" --status completed
python -m repro.scenarios query --store "$S3_STORE" \
    --where "tau_labor>0.15" --status completed --json > "$SCRATCH/query.json"
QUERY_JSON="$SCRATCH/query.json" python - <<'EOF'
import json, os

matches = json.load(open(os.environ["QUERY_JSON"]))
assert len(matches) == 1, f"expected exactly 1 high-tax match, got {len(matches)}"
record = matches[0]
assert record["status"] == "completed", record
assert record["calibration.tau_labor"] > 0.15, record
print(f"store-query smoke OK: tau_labor>0.15 matched {record['name']} "
      "out of the folded index")
EOF

# --- worker-fleet stress: lease-coordinated drain with a SIGKILL --------- #
# One worker starts draining the 8-scenario fleet suite and is SIGKILLed
# mid-solve (lease + checkpoint left behind); two late-joining workers
# must steal the expired lease, resume the dead worker's checkpoint and
# finish the drain — every scenario completed exactly-once-effective,
# zero lease objects remaining.
FLEET_STORE="s3://quick-bench/fleet?endpoint=$SCRATCH/object-store"
echo "=== worker-fleet stress against $FLEET_STORE ==="
python -m repro.scenarios work fleet --store "$FLEET_STORE" \
    --ttl 2 --poll 0.2 --worker-id victim &
VICTIM=$!
sleep 1
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true
python -m repro.scenarios work fleet --store "$FLEET_STORE" \
    --ttl 2 --poll 0.2 --worker-id survivor-1 &
W1=$!
python -m repro.scenarios work fleet --store "$FLEET_STORE" \
    --ttl 2 --poll 0.2 --worker-id survivor-2 &
W2=$!
wait "$W1"
wait "$W2"
python -m repro.scenarios status --store "$FLEET_STORE"
FLEET_STORE_URL="$FLEET_STORE" python - <<'EOF'
import os
from repro.scenarios import ResultsStore, get_preset

store = ResultsStore.open(os.environ["FLEET_STORE_URL"])
suite = get_preset("fleet")
index = store.index()
assert set(index) == set(suite.hashes()), (
    f"drained {len(index)}/{len(set(suite.hashes()))} scenarios"
)
assert all(e["status"] == "completed" for e in index.values()), index
assert store.leases() == [], f"lease objects left behind: {store.leases()}"
assert store.parked() == [], f"scenarios parked: {store.parked()}"
print(f"worker-fleet stress OK on {store.url}: {len(index)} scenario(s) drained "
      "exactly-once-effective after SIGKILL; zero lease objects remain")
EOF

# --- run report over the fleet drain -------------------------------------- #
# Render the self-contained HTML run report from the stressed store's event
# feed and verify the telemetry recorded the drain faithfully: the SIGKILL
# must show up as >= 1 steal, and every scenario's completion must appear
# as a committed event.  CI sets QUICK_REPORT_OUT to a persistent path and
# uploads the report as a per-run artifact.
export QUICK_REPORT_OUT="${QUICK_REPORT_OUT:-$SCRATCH/fleet-report.html}"
python -m repro.scenarios report --store "$FLEET_STORE" \
    --format html -o "$QUICK_REPORT_OUT"
FLEET_STORE_URL="$FLEET_STORE" python - <<'EOF'
import os
from repro.scenarios import ResultsStore, get_preset
from repro.scenarios.report import gather_run_data

store = ResultsStore.open(os.environ["FLEET_STORE_URL"])
data = gather_run_data(store)
assert data["steals"] >= 1, (
    "the SIGKILLed victim's lease was never stolen "
    f"(event counts: {data['event_counts']})"
)
committed = {
    e.get("scenario") for e in store.events() if e.get("kind") == "committed"
}
expected = {store.scenario_key(s) for s in get_preset("fleet")}
assert committed == expected, (
    f"committed events cover {len(committed)}/{len(expected)} scenarios"
)
html = open(os.environ["QUICK_REPORT_OUT"]).read()
assert html.startswith("<!DOCTYPE html>") and "<svg" in html
assert "<script" not in html and "href=" not in html, "report is not self-contained"
print(f"run report OK: {os.environ['QUICK_REPORT_OUT']} records "
      f"{data['steals']} steal(s) and {len(committed)} completion(s)")
EOF

# write the quick sweep to a scratch file by default: the full-sweep
# BENCH_hierarchize.json artifact at the repo root must not be clobbered
export QUICK_BENCH_OUT="${QUICK_BENCH_OUT:-$SCRATCH/bench_quick.json}"
python benchmarks/bench_hierarchize.py --quick --out "$QUICK_BENCH_OUT"

python - <<'EOF'
import json, os

artifact = json.load(open(os.environ["QUICK_BENCH_OUT"]))
slow = [
    c for c in artifact["cases"]
    if c["num_points"] >= 29 and c["warm_speedup_vs_seed"] < 5.0
]
if slow:
    raise SystemExit(f"fit-path perf regression: warm speedup < 5x on {slow}")
print("quick bench OK: warm hierarchize >= 5x seed on all non-trivial grids")
EOF

# --- batched-solve benchmark: >= 2x over sequential ----------------------- #
# The half-size shared-topology sweep solved sequentially and through the
# batched driver; the script itself asserts tolerance-level agreement, and
# the guard below makes a solve-path perf regression fail the run.
export BENCH_SOLVE_OUT="${BENCH_SOLVE_OUT:-$SCRATCH/bench_solve_quick.json}"
python benchmarks/bench_solve.py --quick --out "$BENCH_SOLVE_OUT"

python - <<'EOF'
import json, os

artifact = json.load(open(os.environ["BENCH_SOLVE_OUT"]))
if artifact["speedup"] < 2.0:
    raise SystemExit(
        "solve-path perf regression: batched time iteration only "
        f"{artifact['speedup']:.2f}x over sequential (need >= 2x)"
    )
print(
    f"solve bench OK: batched {artifact['speedup']:.2f}x over sequential "
    f"on {artifact['n_scenarios']} scenarios "
    f"(max policy diff {artifact['max_policy_diff']:.2e})"
)
EOF
