#!/usr/bin/env bash
# Quick verification + fit-path perf smoke: tier-1 tests followed by a
# 2-scenario CLI smoke sweep (with a kill/resume leg) and the
# hierarchization micro-benchmark, so scenario-engine and fit-path
# regressions surface alongside correctness failures.
# Usage: benchmarks/run_quick.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -q

# --- scenario-engine smoke sweep through the CLI ------------------------- #
export SCENARIO_STORE="$(mktemp -d)"
trap 'rm -rf "$SCENARIO_STORE" "$SCENARIO_STORE-fresh"' EXIT
python -m repro.scenarios run smoke --store "$SCENARIO_STORE" --dry-run
# first pass is killed after one iteration (checkpoint survives) ...
python -m repro.scenarios run smoke --store "$SCENARIO_STORE" --interrupt-after 1 || true
# ... the resumable checkpoints show up in the resume listing ...
python -m repro.scenarios resume --store "$SCENARIO_STORE"
# ... and the identical re-invocation resumes from them and completes
python -m repro.scenarios run smoke --store "$SCENARIO_STORE"
python -m repro.scenarios show --store "$SCENARIO_STORE"
# the two smoke entries differ only in tau_labor; diff must say so
python -m repro.scenarios diff \
    "$(python -c 'from repro.scenarios import get_preset; print(get_preset("smoke")[0].content_hash())')" \
    "$(python -c 'from repro.scenarios import get_preset; print(get_preset("smoke")[1].content_hash())')" \
    --store "$SCENARIO_STORE"

python - <<'EOF'
import json, os, numpy as np
from repro.scenarios import ResultsStore, get_preset, run_suite

store = ResultsStore(os.environ["SCENARIO_STORE"])
suite = get_preset("smoke")
entries = [store.entry(s) for s in suite]
assert all(e and e["status"] == "completed" for e in entries), entries
assert all(e["resumed"] for e in entries), "smoke sweep should have resumed from checkpoints"

# resumed results must match uninterrupted solves of the same specs
fresh = ResultsStore(os.environ["SCENARIO_STORE"] + "-fresh")
run_suite(suite, fresh)
for spec in suite:
    a, b = store.load_result(spec), fresh.load_result(spec)
    assert a.iterations == b.iterations
    X = spec.build_model().domain.sample(20, rng=0)
    diff = max(
        float(np.max(np.abs(a.policy.evaluate(z, X) - b.policy.evaluate(z, X))))
        for z in range(len(a.policy))
    )
    assert diff <= 1e-12, f"{spec.name}: resumed vs uninterrupted policy diff {diff}"
print("scenario smoke OK: killed sweep resumed bit-for-bit and was skipped-by-hash safe")
EOF

# write the quick sweep to a scratch file: the default --out would clobber
# the canonical full-sweep BENCH_hierarchize.json artifact at the repo root
export QUICK_BENCH_OUT="$SCENARIO_STORE/bench_quick.json"
python benchmarks/bench_hierarchize.py --quick --out "$QUICK_BENCH_OUT"

python - <<'EOF'
import json, os

artifact = json.load(open(os.environ["QUICK_BENCH_OUT"]))
slow = [
    c for c in artifact["cases"]
    if c["num_points"] >= 29 and c["warm_speedup_vs_seed"] < 5.0
]
if slow:
    raise SystemExit(f"fit-path perf regression: warm speedup < 5x on {slow}")
print("quick bench OK: warm hierarchize >= 5x seed on all non-trivial grids")
EOF
