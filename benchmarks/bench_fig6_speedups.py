"""Fig. 6 benchmark — normalized kernel speedups relative to the gold kernel.

Fig. 6 plots the same measurements as Table II normalized by the ``gold``
(dense-layout) kernel.  This benchmark times the whole kernel ladder through
the experiment harness and stores the normalized speedups in ``extra_info``,
so the benchmark JSON carries the exact series the figure shows, side by
side with the paper's values.
"""

from __future__ import annotations

import pytest

from repro.experiments.table2_fig6 import run_table2


@pytest.mark.benchmark(group="fig6-normalized-speedups")
def bench_fig6_kernel_ladder(benchmark):
    """Measure all kernels on the 7k-style grid and record normalized speedups."""

    def run():
        return run_table2(dim=59, levels=(3,), num_dofs=118, num_queries=32, repeats=1)

    experiments = benchmark.pedantic(run, rounds=1, iterations=1)
    exp = experiments[0]
    for timing in exp.timings:
        benchmark.extra_info[f"speedup_{timing.kernel}"] = round(timing.speedup_vs_gold, 2)
        if timing.paper_speedup_vs_gold is not None:
            benchmark.extra_info[f"paper_speedup_{timing.kernel}"] = round(
                timing.paper_speedup_vs_gold, 2
            )
    # the paper's qualitative finding: every compressed kernel beats gold
    for name in ("x86", "avx", "avx2", "avx512", "cuda"):
        assert exp.timing(name).speedup_vs_gold > 1.0
