"""Ablation benchmarks for the design choices called out in DESIGN.md.

These quantify the individual contribution of the paper's components:
proportional state-to-group sizing, intra-node work stealing, the chain /
surplus reordering, and the chain early-exit in the compressed kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compression import compress_grid
from repro.core.kernels import evaluate
from repro.experiments.ablations import (
    run_partition_ablation,
    run_reordering_ablation,
    run_scheduler_ablation,
)
from repro.grids.regular import regular_sparse_grid


@pytest.mark.benchmark(group="ablation-partition")
def bench_partition_rule(benchmark):
    """Proportional vs. uniform MPI group sizing on dispersed grid sizes."""
    result = benchmark.pedantic(
        run_partition_ablation, kwargs={"total_processes": 64}, rounds=5, iterations=1
    )
    benchmark.extra_info["imbalance_proportional"] = round(result.imbalance_proportional, 4)
    benchmark.extra_info["imbalance_uniform"] = round(result.imbalance_uniform, 4)
    assert result.imbalance_proportional <= result.imbalance_uniform + 1e-12


@pytest.mark.benchmark(group="ablation-scheduler")
def bench_work_stealing_vs_static(benchmark):
    """Work stealing vs. static partition on a heavy-tailed solve-cost mix."""
    result = benchmark.pedantic(
        run_scheduler_ablation,
        kwargs={"num_tasks": 5_000, "num_workers": 24},
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["speedup_from_stealing"] = round(result.speedup_from_stealing, 2)
    benchmark.extra_info["efficiency_stealing"] = round(result.efficiency_stealing, 3)
    benchmark.extra_info["efficiency_static"] = round(result.efficiency_static, 3)
    assert result.speedup_from_stealing > 1.0


@pytest.mark.benchmark(group="ablation-reordering")
def bench_surplus_reordering(benchmark):
    """Batched kernel with vs. without the chain/surplus reordering."""
    result = benchmark.pedantic(
        run_reordering_ablation,
        kwargs={"dim": 12, "level": 4, "num_dofs": 32, "num_queries": 128, "repeats": 2},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["speedup_from_reordering"] = round(result.speedup_from_reordering, 3)
    benchmark.extra_info["num_points"] = result.num_points


@pytest.mark.benchmark(group="ablation-nfreq")
@pytest.mark.parametrize("level", [2, 3, 4])
def bench_compression_ratio_by_depth(benchmark, level):
    """How the chain length (nfreq) and kernel time grow with the grid level.

    This is the ablation of the compression's key parameter: deeper grids
    have longer chains, so the compressed kernel's advantage over the dense
    layout shrinks from d/1 towards d/nfreq.
    """
    dim = 20
    grid = regular_sparse_grid(dim, level)
    comp = compress_grid(grid)
    rng = np.random.default_rng(0)
    surplus = rng.standard_normal((len(grid), 16))
    queries = rng.random((64, dim))
    result = benchmark.pedantic(
        evaluate, args=(comp, surplus, queries), kwargs={"kernel": "cuda"},
        rounds=3, iterations=1,
    )
    assert result.shape == (64, 16)
    benchmark.extra_info["nfreq"] = comp.nfreq
    benchmark.extra_info["num_points"] = comp.num_points
    benchmark.extra_info["compression_ratio"] = round(comp.compression_ratio, 2)
