"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that editable installs also work on minimal/offline environments that lack
the ``wheel`` package (``python setup.py develop`` or
``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
